"""Versioned in-memory key-value store.

This is the authoritative per-replica datastore used by every protocol in
the library. Each record carries the value, an opaque per-protocol metadata
slot (Hermes stores its per-key timestamp and state here; CRAQ stores its
clean/dirty version list; ZAB stores the last applied zxid), and a seqlock
modelling ccKVS's CRCW access discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, Optional, Tuple

from repro.errors import CapacityExceeded, KeyNotFound
from repro.kvs.mica import MicaIndex
from repro.kvs.seqlock import SeqLock
from repro.types import Key, Value


@dataclass
class ValueRecord:
    """A stored record: value plus protocol metadata.

    Attributes:
        value: The application value.
        meta: Protocol-specific metadata (opaque to the store).
        version: Monotonic store-level version, incremented on every put.
        lock: Seqlock guarding the record.
    """

    value: Value
    meta: Any = None
    version: int = 0
    lock: SeqLock = field(default_factory=SeqLock)


class KeyValueStore:
    """A replica-local key-value store.

    Args:
        capacity: Optional maximum number of keys; exceeding it raises
            :class:`CapacityExceeded`. ``None`` means unbounded.
        track_index: Whether to maintain a MICA-style index alongside the
            dict (adds realism for capacity studies at a small CPU cost).
    """

    def __init__(self, capacity: Optional[int] = None, track_index: bool = False) -> None:
        self._records: Dict[Key, ValueRecord] = {}
        self._capacity = capacity
        self._index: Optional[MicaIndex] = None
        if track_index:
            buckets = max(64, (capacity or 4096) // 4)
            self._index = MicaIndex(num_buckets=buckets)
        self.reads = 0
        self.writes = 0

    # ---------------------------------------------------------------- basic
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Key) -> bool:
        return key in self._records

    def keys(self) -> Iterator[Key]:
        """Iterate over the stored keys."""
        return iter(self._records.keys())

    def items(self) -> Iterator[Tuple[Key, ValueRecord]]:
        """Iterate over ``(key, record)`` pairs."""
        return iter(self._records.items())

    # ----------------------------------------------------------------- read
    def get(self, key: Key) -> Value:
        """Return the value stored for ``key``.

        Raises:
            KeyNotFound: if the key is not present.
        """
        record = self._records.get(key)
        if record is None:
            raise KeyNotFound(repr(key))
        self.reads += 1
        return record.lock.read(lambda: record.value)

    def get_record(self, key: Key) -> ValueRecord:
        """Return the full record (value + metadata) for ``key``.

        Raises:
            KeyNotFound: if the key is not present.
        """
        record = self._records.get(key)
        if record is None:
            raise KeyNotFound(repr(key))
        return record

    def try_get_record(self, key: Key) -> Optional[ValueRecord]:
        """Return the record for ``key`` or ``None`` if absent."""
        return self._records.get(key)

    # ---------------------------------------------------------------- write
    def put(self, key: Key, value: Value, meta: Any = None) -> ValueRecord:
        """Insert or update ``key`` with ``value`` (and optional metadata).

        Raises:
            CapacityExceeded: when inserting a new key would exceed capacity.
        """
        record = self._records.get(key)
        if record is None:
            if self._capacity is not None and len(self._records) >= self._capacity:
                raise CapacityExceeded(
                    f"store capacity {self._capacity} reached inserting {key!r}"
                )
            record = ValueRecord(value=value, meta=meta)
            self._records[key] = record
            if self._index is not None:
                self._index.insert(key)
        else:
            def apply() -> None:
                record.value = value
                if meta is not None:
                    record.meta = meta

            record.lock.write(apply)
        record.version += 1
        self.writes += 1
        return record

    def update_meta(self, key: Key, meta: Any) -> ValueRecord:
        """Replace the metadata slot for an existing key."""
        record = self.get_record(key)
        record.meta = meta
        return record

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns whether it was present."""
        removed = self._records.pop(key, None)
        if removed is None:
            return False
        if self._index is not None:
            self._index.remove(key)
        return True

    # ------------------------------------------------------------- bulk ops
    def snapshot(self) -> Dict[Key, Value]:
        """Return a shallow copy of the key → value mapping."""
        return {key: record.value for key, record in self._records.items()}

    def load(self, items: Dict[Key, Value], meta_factory=None) -> None:
        """Bulk-load a mapping of keys to values (used for dataset setup).

        Args:
            items: Mapping of keys to initial values.
            meta_factory: Optional zero-argument callable producing the
                initial metadata for each key.
        """
        for key, value in items.items():
            meta = meta_factory() if meta_factory is not None else None
            self.put(key, value, meta=meta)

    def chunks(self, chunk_size: int = 256) -> Iterator[Dict[Key, Value]]:
        """Yield the dataset in chunks of at most ``chunk_size`` keys.

        Models the chunked state transfer used when a new (shadow) replica
        reconstructs the datastore from live replicas (paper §3.4 Recovery).
        """
        chunk: Dict[Key, Value] = {}
        for key, record in self._records.items():
            chunk[key] = record.value
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = {}
        if chunk:
            yield chunk
