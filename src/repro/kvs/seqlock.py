"""Sequence locks (seqlocks).

ccKVS uses seqlocks to allow lock-free readers alongside writers (paper §4.1,
citing Lameter's Linux seqlock design). A seqlock is a counter that writers
increment before and after modifying the protected data; readers snapshot the
counter before and after reading and retry if it changed or was odd (a write
was in progress).

In a single-threaded discrete-event simulation there is no true parallelism,
but the seqlock abstraction is still exercised: the store uses it to version
records, tests use it to validate the read-retry discipline, and it documents
the substrate the paper builds on.
"""

from __future__ import annotations

from typing import Callable, Tuple, TypeVar

from repro.errors import KVSError

T = TypeVar("T")


class SeqLockError(KVSError):
    """A seqlock protocol violation (e.g. unlock without lock)."""


class SeqLock:
    """A sequence lock protecting a single record.

    Writers call :meth:`write_begin` / :meth:`write_end`; readers use
    :meth:`read` with a closure, or the lower-level :meth:`read_begin` /
    :meth:`read_validate` pair.
    """

    __slots__ = ("_sequence",)

    def __init__(self) -> None:
        self._sequence = 0

    @property
    def sequence(self) -> int:
        """Current sequence number (odd while a write is in progress)."""
        return self._sequence

    @property
    def write_in_progress(self) -> bool:
        """Whether a writer currently holds the lock."""
        return self._sequence % 2 == 1

    # ---------------------------------------------------------------- writer
    def write_begin(self) -> None:
        """Enter the write-side critical section."""
        if self.write_in_progress:
            raise SeqLockError("nested write_begin on seqlock")
        self._sequence += 1

    def write_end(self) -> None:
        """Leave the write-side critical section."""
        if not self.write_in_progress:
            raise SeqLockError("write_end without matching write_begin")
        self._sequence += 1

    # ---------------------------------------------------------------- reader
    def read_begin(self) -> int:
        """Snapshot the sequence counter before an optimistic read."""
        return self._sequence

    def read_validate(self, snapshot: int) -> bool:
        """Whether a read that started at ``snapshot`` observed a stable value."""
        return snapshot % 2 == 0 and snapshot == self._sequence

    def read(self, reader: Callable[[], T], max_retries: int = 64) -> T:
        """Execute ``reader`` under the optimistic read protocol.

        Retries until a consistent snapshot is observed or ``max_retries`` is
        exhausted (which indicates a stuck writer and raises).
        """
        for _ in range(max_retries):
            snapshot = self.read_begin()
            if snapshot % 2 == 1:
                continue
            value = reader()
            if self.read_validate(snapshot):
                return value
        raise SeqLockError("seqlock read did not stabilize (writer stuck?)")

    def write(self, writer: Callable[[], T]) -> T:
        """Execute ``writer`` inside the write-side critical section."""
        self.write_begin()
        try:
            return writer()
        finally:
            self.write_end()
