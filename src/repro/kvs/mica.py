"""MICA-style lossy hash index.

MICA (Lim et al., NSDI'14) organizes its index as an array of fixed-size
buckets of key fingerprints; on bucket overflow the oldest entry is evicted
(the index is *lossy* — the full key-value log is authoritative). ccKVS and
HermesKV inherit this structure. The index here models bucket occupancy,
fingerprint collisions and eviction so that capacity-related behaviour can be
studied, while :class:`repro.kvs.store.KeyValueStore` remains the
authoritative mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Tuple

from repro.errors import ConfigurationError


def fingerprint(key: Hashable, bits: int = 16) -> int:
    """Return a short fingerprint of ``key`` (as MICA stores in its buckets)."""
    return hash(key) & ((1 << bits) - 1)


@dataclass
class BucketEntry:
    """One slot in a bucket: a key fingerprint plus the stored key."""

    fp: int
    key: Hashable
    insert_order: int


@dataclass
class Bucket:
    """A fixed-associativity bucket of index entries."""

    capacity: int
    entries: List[BucketEntry] = field(default_factory=list)

    def lookup(self, key: Hashable, fp: int) -> Optional[BucketEntry]:
        """Find the entry for ``key`` (fingerprint pre-filter, then full key)."""
        for entry in self.entries:
            if entry.fp == fp and entry.key == key:
                return entry
        return None

    def insert(self, entry: BucketEntry) -> Optional[BucketEntry]:
        """Insert an entry, evicting the oldest one if the bucket is full.

        Returns:
            The evicted entry, or ``None`` if no eviction was necessary.
        """
        evicted = None
        if len(self.entries) >= self.capacity:
            oldest_index = min(
                range(len(self.entries)), key=lambda i: self.entries[i].insert_order
            )
            evicted = self.entries.pop(oldest_index)
        self.entries.append(entry)
        return evicted

    def remove(self, key: Hashable, fp: int) -> bool:
        """Remove the entry for ``key``; returns whether it was present."""
        entry = self.lookup(key, fp)
        if entry is None:
            return False
        self.entries.remove(entry)
        return True


class MicaIndex:
    """A lossy hash index with power-of-two bucket count.

    Args:
        num_buckets: Number of buckets; rounded up to a power of two.
        bucket_capacity: Entries per bucket (MICA uses 7 or 15).
        fingerprint_bits: Width of stored fingerprints.
    """

    def __init__(
        self,
        num_buckets: int = 1024,
        bucket_capacity: int = 8,
        fingerprint_bits: int = 16,
    ) -> None:
        if num_buckets < 1:
            raise ConfigurationError("num_buckets must be positive")
        if bucket_capacity < 1:
            raise ConfigurationError("bucket_capacity must be positive")
        if not 1 <= fingerprint_bits <= 64:
            raise ConfigurationError("fingerprint_bits must be in [1, 64]")
        self._mask = self._round_up_pow2(num_buckets) - 1
        self._buckets: List[Bucket] = [
            Bucket(capacity=bucket_capacity) for _ in range(self._mask + 1)
        ]
        self._fp_bits = fingerprint_bits
        self._insert_counter = 0
        self.evictions = 0

    @staticmethod
    def _round_up_pow2(value: int) -> int:
        power = 1
        while power < value:
            power <<= 1
        return power

    @property
    def num_buckets(self) -> int:
        """Number of buckets in the index."""
        return self._mask + 1

    def _bucket_for(self, key: Hashable) -> Tuple[Bucket, int]:
        fp = fingerprint(key, self._fp_bits)
        index = hash(key) >> 16 & self._mask
        return self._buckets[index], fp

    def insert(self, key: Hashable) -> Optional[Hashable]:
        """Insert ``key`` into the index.

        Returns:
            The key evicted to make room, or ``None``.
        """
        bucket, fp = self._bucket_for(key)
        if bucket.lookup(key, fp) is not None:
            return None
        self._insert_counter += 1
        evicted = bucket.insert(BucketEntry(fp=fp, key=key, insert_order=self._insert_counter))
        if evicted is None:
            return None
        self.evictions += 1
        return evicted.key

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` is currently present in the index."""
        bucket, fp = self._bucket_for(key)
        return bucket.lookup(key, fp) is not None

    def remove(self, key: Hashable) -> bool:
        """Remove ``key``; returns whether it was present."""
        bucket, fp = self._bucket_for(key)
        return bucket.remove(key, fp)

    def load_factor(self) -> float:
        """Fraction of index slots currently occupied."""
        occupied = sum(len(b.entries) for b in self._buckets)
        total = sum(b.capacity for b in self._buckets)
        return occupied / total if total else 0.0
