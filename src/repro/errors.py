"""Exception hierarchy for the Hermes reproduction library.

All library-specific exceptions derive from :class:`ReproError` so that
callers can catch a single base class. Sub-hierarchies mirror the major
subsystems (simulation, protocol, membership, verification).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value or combination was supplied."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulator."""


class SimulationDeadlock(SimulationError):
    """The simulator ran out of events before the run condition was met."""


class ProtocolError(ReproError):
    """Base class for replication-protocol errors."""


class InvalidTransition(ProtocolError):
    """A per-key state machine was asked to make an illegal transition."""


class NotCoordinator(ProtocolError):
    """An operation that requires coordinator role was invoked on a follower."""


class StaleEpoch(ProtocolError):
    """A message from an older membership epoch was processed where it must not be."""


class RMWAborted(ProtocolError):
    """A read-modify-write lost to a concurrent conflicting update (paper §3.6)."""


class MembershipError(ReproError):
    """Base class for reliable-membership errors."""


class LeaseExpired(MembershipError):
    """A node attempted an operation without a valid membership lease."""


class NotInMembership(MembershipError):
    """A node that is not part of the current membership attempted an operation."""


class NoQuorum(MembershipError):
    """A majority-based membership update could not gather a quorum."""


class KVSError(ReproError):
    """Base class for key-value store errors."""


class KeyNotFound(KVSError):
    """The requested key is not present in the store."""


class CapacityExceeded(KVSError):
    """The store has reached its configured capacity."""


class VerificationError(ReproError):
    """Base class for history / invariant verification errors."""


class LinearizabilityViolation(VerificationError):
    """A recorded history is not linearizable."""


class HistoryError(VerificationError):
    """A recorded history is malformed (e.g. completion without invocation)."""


class WorkloadError(ReproError):
    """An invalid workload specification was supplied."""


class BenchmarkError(ReproError):
    """An experiment harness was misconfigured or produced inconsistent output."""
