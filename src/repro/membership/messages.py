"""Wire messages of the reliable membership service.

All membership messages derive from :class:`MembershipMessage` so that
replica nodes can dispatch them to their :class:`~repro.membership.agent.
MembershipAgent` without inspecting individual types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.membership.view import MembershipView, ShardMigration
from repro.types import Key, NodeId, Value

#: Approximate wire size of small control messages, in bytes.
CONTROL_MESSAGE_BYTES = 24


@dataclass(slots=True)
class MembershipMessage:
    """Base class for all RM messages."""

    @property
    def size_bytes(self) -> int:
        """Payload size used by the network model."""
        return CONTROL_MESSAGE_BYTES


@dataclass(slots=True)
class Ping(MembershipMessage):
    """Liveness probe from the RM service to a replica."""

    sequence: int = 0


@dataclass(slots=True)
class Pong(MembershipMessage):
    """Reply to a :class:`Ping`."""

    sequence: int = 0


@dataclass(slots=True)
class LeaseGrant(MembershipMessage):
    """Grant (or renew) a replica's lease under a view."""

    view: MembershipView = None  # type: ignore[assignment]
    duration: float = 0.0


@dataclass(slots=True)
class Prepare(MembershipMessage):
    """Paxos phase-1a message for an m-update."""

    ballot: int = 0


@dataclass(slots=True)
class Promise(MembershipMessage):
    """Paxos phase-1b message.

    ``accepted_value`` is a previously accepted :class:`MembershipView`
    (opaque to the Paxos machinery).
    """

    ballot: int = 0
    accepted_ballot: Optional[int] = None
    accepted_value: Optional[Any] = None


@dataclass(slots=True)
class Accept(MembershipMessage):
    """Paxos phase-2a message carrying the proposed new view."""

    ballot: int = 0
    value: Any = None


@dataclass(slots=True)
class Accepted(MembershipMessage):
    """Paxos phase-2b message."""

    ballot: int = 0


@dataclass(slots=True)
class Nack(MembershipMessage):
    """Rejection of a Prepare/Accept carrying the highest promised ballot."""

    promised_ballot: int = 0


@dataclass(slots=True)
class MUpdate(MembershipMessage):
    """Installation of a reconfigured view on a live replica (paper §3.4)."""

    view: MembershipView = None  # type: ignore[assignment]
    lease_duration: float = 0.0


@dataclass(slots=True)
class MigrationFrozen(MembershipMessage):
    """A node reports its source-shard replica frozen and quiescent.

    Sent to the RM service after a ``preparing`` shard map was installed
    and the node's in-flight writes on the migrated keys drained.
    """

    epoch_id: int = 0


@dataclass(slots=True)
class MigrationCopy(MembershipMessage):
    """Instruct the source shard's lock-master node to copy the frozen keys."""

    epoch_id: int = 0
    migration: Optional[ShardMigration] = None


@dataclass(slots=True)
class MigrationCopied(MembershipMessage):
    """The copy node reports the migrated keys applied at the target shard.

    ``values`` carries the frozen per-key values the copy transferred —
    the pre-migration state the migration-atomicity checker anchors on.
    It is observer metadata, not wire payload: a real copy node keeps the
    frozen manifest locally (the data itself already travelled through the
    target shard's replicated writes) and acks the service with a control
    message, so this message is costed at control size — the freeze→flip
    window must not scale with the migrated slice.
    """

    epoch_id: int = 0
    #: ``None`` means "no values transferred" (M002: no mutable defaults on
    #: zero-copy messages — a shared default dict would alias every instance).
    values: Optional[Dict[Key, Value]] = None
