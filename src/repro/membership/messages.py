"""Wire messages of the reliable membership service.

All membership messages derive from :class:`MembershipMessage` so that
replica nodes can dispatch them to their :class:`~repro.membership.agent.
MembershipAgent` without inspecting individual types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.membership.view import MembershipView
from repro.types import NodeId

#: Approximate wire size of small control messages, in bytes.
CONTROL_MESSAGE_BYTES = 24


@dataclass
class MembershipMessage:
    """Base class for all RM messages."""

    @property
    def size_bytes(self) -> int:
        """Payload size used by the network model."""
        return CONTROL_MESSAGE_BYTES


@dataclass
class Ping(MembershipMessage):
    """Liveness probe from the RM service to a replica."""

    sequence: int = 0


@dataclass
class Pong(MembershipMessage):
    """Reply to a :class:`Ping`."""

    sequence: int = 0


@dataclass
class LeaseGrant(MembershipMessage):
    """Grant (or renew) a replica's lease under a view."""

    view: MembershipView = None  # type: ignore[assignment]
    duration: float = 0.0


@dataclass
class Prepare(MembershipMessage):
    """Paxos phase-1a message for an m-update."""

    ballot: int = 0


@dataclass
class Promise(MembershipMessage):
    """Paxos phase-1b message."""

    ballot: int = 0
    accepted_ballot: Optional[int] = None
    accepted_value: Optional[Tuple[int, FrozenSet[NodeId]]] = None


@dataclass
class Accept(MembershipMessage):
    """Paxos phase-2a message carrying the proposed new view."""

    ballot: int = 0
    value: Tuple[int, FrozenSet[NodeId]] = field(default_factory=tuple)  # type: ignore[assignment]


@dataclass
class Accepted(MembershipMessage):
    """Paxos phase-2b message."""

    ballot: int = 0


@dataclass
class Nack(MembershipMessage):
    """Rejection of a Prepare/Accept carrying the highest promised ballot."""

    promised_ballot: int = 0


@dataclass
class MUpdate(MembershipMessage):
    """Installation of a reconfigured view on a live replica (paper §3.4)."""

    view: MembershipView = None  # type: ignore[assignment]
    lease_duration: float = 0.0
