"""Wire messages of the reliable membership service.

All membership messages derive from :class:`MembershipMessage` so that
replica nodes can dispatch them to their :class:`~repro.membership.agent.
MembershipAgent` without inspecting individual types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.membership.view import MembershipView, ShardMigration
from repro.types import Key, NodeId, Value

#: Approximate wire size of small control messages, in bytes.
CONTROL_MESSAGE_BYTES = 24


@dataclass(slots=True)
class MembershipMessage:
    """Base class for all RM messages."""

    @property
    def size_bytes(self) -> int:
        """Payload size used by the network model."""
        return CONTROL_MESSAGE_BYTES


@dataclass(slots=True)
class Ping(MembershipMessage):
    """Liveness probe from the RM service to a replica."""

    sequence: int = 0


@dataclass(slots=True)
class Pong(MembershipMessage):
    """Reply to a :class:`Ping`."""

    sequence: int = 0


@dataclass(slots=True)
class LeaseGrant(MembershipMessage):
    """Grant (or renew) a replica's lease under a view."""

    view: MembershipView = None  # type: ignore[assignment]
    duration: float = 0.0


@dataclass(slots=True)
class Prepare(MembershipMessage):
    """Paxos phase-1a message for an m-update."""

    ballot: int = 0


@dataclass(slots=True)
class Promise(MembershipMessage):
    """Paxos phase-1b message.

    ``accepted_value`` is a previously accepted :class:`MembershipView`
    (opaque to the Paxos machinery).
    """

    ballot: int = 0
    accepted_ballot: Optional[int] = None
    accepted_value: Optional[Any] = None


@dataclass(slots=True)
class Accept(MembershipMessage):
    """Paxos phase-2a message carrying the proposed new view."""

    ballot: int = 0
    value: Any = None


@dataclass(slots=True)
class Accepted(MembershipMessage):
    """Paxos phase-2b message."""

    ballot: int = 0


@dataclass(slots=True)
class Nack(MembershipMessage):
    """Rejection of a Prepare/Accept carrying the highest promised ballot."""

    promised_ballot: int = 0


@dataclass(slots=True)
class MUpdate(MembershipMessage):
    """Installation of a reconfigured view on a live replica (paper §3.4).

    ``joined`` is set only on the copy sent to a node this view re-admits
    (the join state-transfer path): it tells the joining node's host to
    park client operations until its snapshot catch-up completes, exactly
    from the install instant — no separate control message could mark the
    boundary race-free.
    """

    view: MembershipView = None  # type: ignore[assignment]
    lease_duration: float = 0.0
    joined: Optional[NodeId] = None


@dataclass(slots=True)
class MigrationFrozen(MembershipMessage):
    """A node reports its source-shard replica frozen and quiescent.

    Sent to the RM service after a ``preparing`` shard map was installed
    and the node's in-flight writes on the migrated keys drained.
    """

    epoch_id: int = 0


@dataclass(slots=True)
class MigrationCopy(MembershipMessage):
    """Instruct the source shard's lock-master node to copy the frozen keys."""

    epoch_id: int = 0
    migration: Optional[ShardMigration] = None


@dataclass(slots=True)
class JoinRequest(MembershipMessage):
    """A restarted node asks the RM service to re-admit it to the view.

    Sent by the node's host on recovery (when re-join is enabled); retried
    on a timer until the join completes, since the service ignores requests
    that collide with an in-flight reconfiguration or rebalance.
    """

    node_id: NodeId = -1


@dataclass(slots=True)
class JoinCopy(MembershipMessage):
    """Instruct a live node to snapshot its shards to a (re)joining node.

    The join epoch is the epoch of the view that re-admitted the joiner;
    stale copies (from a cancelled join) carry an old epoch and are ignored.
    """

    epoch_id: int = 0
    joiner: NodeId = -1


@dataclass(slots=True)
class JoinSnapshot(MembershipMessage):
    """One shard's state snapshot streamed to a joining node.

    Unlike migration acks this *is* data on the wire: the joiner missed
    every write since its crash, so the snapshot bytes really travel.
    ``entries`` holds ``(key, value, ts_version, ts_cid, valid, rmw_flag)``
    tuples — enough for the joiner to adopt each key's committed value and
    logical timestamp without regressing anything newer it already
    replicated as a post-view-install follower.
    """

    epoch_id: int = 0
    shard_id: int = 0
    entries: Optional[list] = None

    @property
    def size_bytes(self) -> int:
        # Key + value + timestamp per entry (modelled at the library's
        # default wire sizes), plus the control header.
        entries = self.entries or ()
        data = 0
        for entry in entries:
            data += 8 + 8  # key + timestamp
            value = entry[1]
            if isinstance(value, (bytes, bytearray, str)):
                data += len(value)
            else:
                data += 32
        return CONTROL_MESSAGE_BYTES + data


@dataclass(slots=True)
class JoinCopied(MembershipMessage):
    """The joining node reports every shard snapshot applied."""

    epoch_id: int = 0
    joiner: NodeId = -1


@dataclass(slots=True)
class MigrationCopied(MembershipMessage):
    """The copy node reports the migrated keys applied at the target shard.

    ``values`` carries the frozen per-key values the copy transferred —
    the pre-migration state the migration-atomicity checker anchors on.
    It is observer metadata, not wire payload: a real copy node keeps the
    frozen manifest locally (the data itself already travelled through the
    target shard's replicated writes) and acks the service with a control
    message, so this message is costed at control size — the freeze→flip
    window must not scale with the migrated slice.
    """

    epoch_id: int = 0
    #: ``None`` means "no values transferred" (M002: no mutable defaults on
    #: zero-copy messages — a shared default dict would alias every instance).
    values: Optional[Dict[Key, Value]] = None
