"""The reliable membership (RM) service process.

The service plays the role that the paper attributes to the datacenter's RM
infrastructure (§2.4, §6.6): it probes replicas, detects failures with a
conservative timeout, waits for the expiry of outstanding leases, decides the
new membership through a majority-based Paxos round among the surviving
replicas, and installs the resulting m-update on every live replica.

On sharded clusters the same per-node agent/detector/Paxos stack serves all
co-hosted shards: the service pings *nodes*, each node's
:class:`~repro.cluster.sharding.ShardHost` answers for every shard it hosts,
and an installed m-update fans out to every shard replica on the node.

The service also drives **live shard migrations**: a planned rebalance is a
pair of Paxos-decided view changes. The first installs a ``preparing``
shard map (nodes freeze the migrated keys and report quiescence via
:class:`~repro.membership.messages.MigrationFrozen`); once every node is
frozen the service instructs the source shard's lock-master node to copy the
keys into the target shard through its normal replicated write path
(:class:`~repro.membership.messages.MigrationCopy` /
:class:`~repro.membership.messages.MigrationCopied`); the second view change
flips the routing epoch (``active``), at which point nodes re-route and
release the parked operations. Progress requires the usual Paxos majority,
so the flip is as fault-tolerant as any other membership update.

The service is itself a :class:`~repro.sim.node.NodeProcess` so that its
messages traverse the simulated network and experience realistic delays —
this is what produces the unavailability window visible in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.membership.detector import FailureDetector, FailureDetectorConfig
from repro.membership.messages import (
    Accept,
    Accepted,
    JoinCopied,
    JoinCopy,
    JoinRequest,
    LeaseGrant,
    MembershipMessage,
    MigrationCopied,
    MigrationCopy,
    MigrationFrozen,
    MUpdate,
    Nack,
    Ping,
    Pong,
    Prepare,
    Promise,
)
from repro.membership.paxos import PaxosProposer
from repro.membership.view import (
    SHARD_MAP_ACTIVE,
    SHARD_MAP_CANCELLED,
    SHARD_MAP_PREPARING,
    MembershipView,
    ShardMap,
    ShardMigration,
)
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import NodeProcess, ServiceTimeModel
from repro.types import Key, NodeId, Value


@dataclass
class PlannedMigration:
    """A live shard migration the RM service starts at a simulated time.

    Attributes:
        at_time: Absolute simulated time to begin the rebalance.
        migration: What moves (see :class:`ShardMigration`).
    """

    at_time: float
    migration: ShardMigration


@dataclass
class MigrationRecord:
    """What one completed migration looked like (checker + figure input).

    Attributes:
        migration: The migrated slice.
        freeze_time: When the ``preparing`` view was installed (sent).
        frozen_time: When every node had reported its keys quiescent.
        copied_time: When the copy node reported the transfer applied.
        flip_time: When the ``active`` view was installed (sent).
        values: Frozen per-key values the copy transferred — the
            pre-migration state of the moved keys.
    """

    migration: ShardMigration
    freeze_time: float = 0.0
    frozen_time: float = 0.0
    copied_time: float = 0.0
    flip_time: float = 0.0
    values: Dict[Key, Value] = field(default_factory=dict)


@dataclass
class MembershipConfig:
    """Configuration of the RM service.

    Attributes:
        lease_duration: Validity period of granted leases.
        renewal_interval: How often leases are refreshed (must be shorter than
            the lease duration so live nodes never observe an expired lease).
        detection: Failure detector settings (ping interval / timeout).
        service_node_id: Node id used by the RM service on the network.
        migrations: Planned live shard migrations (sharded clusters only).
        rejoin: Whether restarted nodes re-enter the view via a join
            request + state-transfer snapshot (sharded clusters whose
            protocol exports snapshot hooks). Off by default: pre-existing
            scenarios model a restarted node staying outside the view.
        join_timeout: Watchdog on the join snapshot handshake — a join
            whose copy has not completed within this window is cancelled
            (the joiner is evicted again; its host retries).
        join_retry_interval: How often a recovering node re-sends its
            :class:`~repro.membership.messages.JoinRequest` while the
            service is busy or a previous attempt was cancelled.
        autoscale: Elastic resharding policy configuration (see
            :class:`repro.cluster.autoscale.AutoscaleConfig`); ``None``
            disables the control loop.
    """

    lease_duration: float = 40e-3
    renewal_interval: float = 10e-3
    detection: FailureDetectorConfig = field(default_factory=FailureDetectorConfig)
    service_node_id: NodeId = 10_000
    migrations: List[PlannedMigration] = field(default_factory=list)
    rejoin: bool = False
    join_timeout: float = 60e-3
    join_retry_interval: float = 20e-3
    autoscale: Optional[object] = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for invalid settings."""
        if self.lease_duration <= 0:
            raise ConfigurationError("lease_duration must be positive")
        if self.renewal_interval <= 0 or self.renewal_interval >= self.lease_duration:
            raise ConfigurationError("renewal_interval must be positive and < lease_duration")
        if self.join_timeout <= 0 or self.join_retry_interval <= 0:
            raise ConfigurationError("join timers must be positive")
        self.detection.validate()
        if self.autoscale is not None:
            self.autoscale.validate()


class MembershipService(NodeProcess):
    """Drives failure detection, lease renewal and membership reconfiguration."""

    #: Delay before retrying a migration start that collided with an
    #: in-flight reconfiguration.
    _MIGRATION_RETRY = 5e-3

    #: Watchdog on the freeze/copy handshake: a migration that has not
    #: flipped within this window is cancelled (a node likely crashed
    #: mid-handshake), so failure reconfiguration is never blocked
    #: indefinitely behind a stuck rebalance. Orders of magnitude above a
    #: healthy freeze+copy (~1 ms) and below the failure-detection window.
    _MIGRATION_TIMEOUT = 60e-3

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        initial_view: MembershipView,
        config: Optional[MembershipConfig] = None,
    ) -> None:
        self.config = config or MembershipConfig()
        self.config.validate()
        super().__init__(
            node_id=self.config.service_node_id,
            sim=sim,
            network=network,
            service_model=ServiceTimeModel(base=0.1e-6, per_byte=0.0, worker_threads=1),
        )
        self.view = initial_view
        self.detector = FailureDetector(
            self.config.detection, monitored=initial_view.members, now=sim.now
        )
        self._ping_sequence = 0
        self._last_lease_grant: Dict[NodeId, float] = {}
        self._reconfiguring = False
        self._pending_removals: Set[NodeId] = set()
        self._proposer: Optional[PaxosProposer] = None
        self._acceptors: frozenset = frozenset()
        self._accept_broadcast_done = False
        self._started = False
        self.reconfigurations = 0
        #: Times at which each epoch became installed (for Figure 9 analysis).
        self.reconfiguration_times: List[float] = []
        # ---- migration orchestration state.
        self._migrating: Optional[MigrationRecord] = None
        self._frozen_acks: Set[NodeId] = set()
        self.migrations_completed = 0
        self.migrations_cancelled = 0
        #: One record per completed migration, in completion order.
        self.migration_records: List[MigrationRecord] = []
        # ---- join (node re-entry) orchestration state.
        #: The node currently being re-admitted (``None`` when idle).
        self._joining: Optional[NodeId] = None
        #: Epoch of the installed view that re-admitted the joiner
        #: (0 until that view installs; guards stale snapshot acks).
        self._join_epoch = 0
        self.joins_completed = 0
        self.joins_cancelled = 0

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Begin pinging, lease renewal, failure monitoring and migrations."""
        if self._started:
            return
        self._started = True
        self._grant_leases()
        self.set_timer(self.config.detection.ping_interval, self._ping_tick)
        self.set_timer(self.config.renewal_interval, self._lease_tick)
        for plan in self.config.migrations:
            self.set_timer(max(0.0, plan.at_time - self.sim.now), self._start_migration, plan)

    # ----------------------------------------------------------- NodeProcess
    def on_message(self, src: NodeId, message: MembershipMessage) -> None:
        """Handle replies from replicas (pongs, Paxos and migration acks)."""
        if isinstance(message, Pong):
            self.detector.record_heartbeat(src, self.sim.now)
            return
        if isinstance(message, Promise):
            self._on_promise(src, message)
            return
        if isinstance(message, Accepted):
            self._on_accepted(src, message)
            return
        if isinstance(message, Nack):
            self._on_nack(message)
            return
        if isinstance(message, MigrationFrozen):
            self._on_migration_frozen(src, message)
            return
        if isinstance(message, MigrationCopied):
            self._on_migration_copied(message)
            return
        if isinstance(message, JoinRequest):
            self._on_join_request(message)
            return
        if isinstance(message, JoinCopied):
            self._on_join_copied(message)
            return
        # Other message kinds are not expected at the service; ignore them.

    def on_local_work(self, work) -> None:  # pragma: no cover - not used
        raise NotImplementedError("the membership service takes no local work")

    # -------------------------------------------------------------- periodic
    def _ping_tick(self) -> None:
        self._ping_sequence += 1
        for node in sorted(self.view.members):
            self.send(node, Ping(sequence=self._ping_sequence), Ping().size_bytes)
        self._check_failures()
        self.set_timer(self.config.detection.ping_interval, self._ping_tick)

    def _lease_tick(self) -> None:
        if not self._reconfiguring:
            self._grant_leases()
        self.set_timer(self.config.renewal_interval, self._lease_tick)

    def _grant_leases(self) -> None:
        grant = LeaseGrant(view=self.view, duration=self.config.lease_duration)
        for node in sorted(self.view.members):
            self._last_lease_grant[node] = self.sim.now
            self.send(node, grant, grant.size_bytes)

    # ----------------------------------------------------- failure handling
    def _check_failures(self) -> None:
        if self._reconfiguring or self._migrating is not None or self._joining is not None:
            # One reconfiguration at a time; a crash during a migration or
            # join is picked up on the next ping tick after it completes
            # (the join watchdog bounds how long a stuck join can defer it).
            return
        suspected = self.detector.suspected(self.sim.now) & self.view.members
        if not suspected:
            return
        self._reconfiguring = True
        self._pending_removals = suspected
        # Reconfiguration may only proceed once every lease that could still
        # be held by a suspected (or any) node has expired (paper §2.4).
        latest_grant = max(self._last_lease_grant.get(n, 0.0) for n in self.view.members)
        lease_expiry = latest_grant + self.config.lease_duration
        delay = max(0.0, lease_expiry - self.sim.now)
        self.set_timer(delay, self._start_reconfiguration)

    def _start_reconfiguration(self) -> None:
        survivors = self.view.members - self._pending_removals
        if not survivors:
            # Total failure: nothing to reconfigure onto.
            self._reconfiguring = False
            return
        # Failure views carry the current shard map unchanged: routing does
        # not move when a node dies, only the membership does.
        new_view = MembershipView(
            epoch_id=self.view.epoch_id + 1,
            members=frozenset(survivors),
            shard_map=self.view.shard_map,
        )
        self._propose(new_view, acceptors=survivors)

    # --------------------------------------------------------------- Paxos
    def _propose(self, new_view: MembershipView, acceptors: Set[NodeId]) -> None:
        """Start a Paxos round deciding ``new_view`` among ``acceptors``.

        Proposals are serialized through ``_reconfiguring`` (cleared when
        the chosen view installs), so a failure reconfiguration can never
        clobber an in-flight migration round or vice versa.
        """
        self._reconfiguring = True
        self._acceptors = frozenset(acceptors)
        self._proposer = PaxosProposer(
            proposer_id=self.node_id,
            num_acceptors=len(self._acceptors),
            value=new_view,
        )
        self._accept_broadcast_done = False
        ballot = self._proposer.start_round()
        prepare = Prepare(ballot=ballot)
        for node in sorted(self._acceptors):
            self.send(node, prepare, prepare.size_bytes)

    def _on_promise(self, src: NodeId, message: Promise) -> None:
        if self._proposer is None:
            return
        quorum = self._proposer.on_promise(
            src, message.ballot, message.accepted_ballot, message.accepted_value
        )
        if quorum and self._proposer.chosen_value is None and not self._accept_broadcast_done:
            accept = Accept(ballot=self._proposer.ballot, value=self._proposer.value)
            for node in sorted(self._acceptors):
                self.send(node, accept, accept.size_bytes)
            self._accept_broadcast_done = True

    def _on_accepted(self, src: NodeId, message: Accepted) -> None:
        if self._proposer is None:
            return
        if self._proposer.on_accepted(src, message.ballot):
            self._install_chosen_view()

    def _on_nack(self, message: Nack) -> None:
        if self._proposer is None or self._proposer.chosen_value is not None:
            return
        ballot = self._proposer.on_nack(message.promised_ballot)
        self._accept_broadcast_done = False
        prepare = Prepare(ballot=ballot)
        for node in sorted(self._acceptors):
            self.send(node, prepare, prepare.size_bytes)

    def _install_chosen_view(self) -> None:
        assert self._proposer is not None and self._proposer.chosen_value is not None
        view: MembershipView = self._proposer.chosen_value
        self.view = view
        for node in self._pending_removals:
            self.detector.remove(node)
        update = MUpdate(view=view, lease_duration=self.config.lease_duration)
        # The copy sent to a node this view re-admits carries the joined
        # marker so its host starts parking client work at install time
        # (``None`` on every other path — bytes and behavior unchanged).
        joiner = self._joining if self._join_epoch == 0 else None
        for node in sorted(view.members):
            self._last_lease_grant[node] = self.sim.now
            if node == joiner:
                marked = MUpdate(
                    view=view,
                    lease_duration=self.config.lease_duration,
                    joined=node,
                )
                self.send(node, marked, marked.size_bytes)
            else:
                self.send(node, update, update.size_bytes)
        self.reconfigurations += 1
        self.reconfiguration_times.append(self.sim.now)
        self._reconfiguring = False
        self._pending_removals = set()
        self._proposer = None
        self._accept_broadcast_done = False
        self._after_install(view)

    # ------------------------------------------------------------ migration
    def _start_migration(self, plan: PlannedMigration) -> None:
        if self._reconfiguring or self._migrating is not None or self._joining is not None:
            # A failure reconfiguration (or another migration/join) is in
            # flight: retry shortly. Migrations are rebalances — they can wait.
            self.set_timer(self._MIGRATION_RETRY, self._start_migration, plan)
            return
        self._begin_migration(plan.migration)

    def request_migration(self, migration: ShardMigration) -> bool:
        """Start a rebalance now if the service is idle (autoscaler entry).

        Unlike a :class:`PlannedMigration` this never queues a retry timer:
        the caller owns the pacing (the autoscale control loop re-plans on
        its next sampling tick against whatever chain is applied by then).
        Returns whether the migration round was started.
        """
        if self._reconfiguring or self._migrating is not None or self._joining is not None:
            return False
        self._begin_migration(migration)
        return True

    def _begin_migration(self, migration: ShardMigration) -> None:
        record = MigrationRecord(migration=migration)
        self._migrating = record
        self._frozen_acks = set()
        preparing = ShardMap(
            epoch=self.view.epoch_id + 1,
            migrations=self._applied_migrations() + (migration,),
            phase=SHARD_MAP_PREPARING,
        )
        new_view = MembershipView(
            epoch_id=self.view.epoch_id + 1,
            members=self.view.members,
            shard_map=preparing,
        )
        self.set_timer(self._MIGRATION_TIMEOUT, self._migration_watchdog, record)
        self._propose(new_view, acceptors=self.view.members)

    def _applied_migrations(self):
        """The cumulative migration chain already applied to routing."""
        shard_map = self.view.shard_map
        if shard_map is None:
            return ()
        migrations = shard_map.migrations
        if shard_map.phase == SHARD_MAP_PREPARING and migrations:
            # Should not occur (migrations are serialized), but never count
            # an in-flight migration as applied.
            return migrations[:-1]
        return migrations

    def _migration_watchdog(self, record: MigrationRecord) -> None:
        """Cancel a migration stuck in its freeze/copy handshake.

        A node that crashed between the ``preparing`` install and its
        freeze/copy ack would otherwise stall the migration forever —
        and with it all failure handling, which is serialized behind
        reconfigurations. Cancelling installs a ``cancelled`` shard map:
        nodes unfreeze (parked operations resume at the source shard,
        routing never moved), and the crash is detected and handled on
        the next ping tick. Once the copy has been acknowledged the
        ``active`` round is already in flight and is left to finish —
        cancelling then could race Paxos value adoption and flip routing
        while the service records a cancellation.
        """
        if self._migrating is not record or record.flip_time or record.copied_time:
            return  # completed (or past the point of no return) in time
        self.migrations_cancelled += 1
        self._migrating = None
        self._frozen_acks = set()
        chain = self._applied_migrations()
        if chain and chain[-1] == record.migration:
            chain = chain[:-1]
        cancelled = ShardMap(
            epoch=self.view.epoch_id + 1,
            migrations=chain,
            phase=SHARD_MAP_CANCELLED,
            cancelled=record.migration,
        )
        new_view = MembershipView(
            epoch_id=self.view.epoch_id + 1,
            members=self.view.members,
            shard_map=cancelled,
        )
        self._propose(new_view, acceptors=self.view.members)

    # ----------------------------------------------------------------- joins
    def _on_join_request(self, message: JoinRequest) -> None:
        """A restarted node asks to re-enter the view.

        Ignored while any reconfiguration, migration or join is in flight
        (the joiner's host retries on a timer) and when the node is already
        a member. Otherwise the join is a Paxos-decided view change adding
        the node back, followed by a state-transfer snapshot (see
        :meth:`_after_install`).
        """
        joiner = message.node_id
        if self._reconfiguring or self._migrating is not None or self._joining is not None:
            return
        if joiner in self.view.members:
            return
        self._joining = joiner
        self._join_epoch = 0
        self._propose(self.view.with_added(joiner), acceptors=self.view.members)

    def _join_watchdog(self, joiner: NodeId, epoch: int) -> None:
        """Cancel a join whose snapshot handshake stalled.

        Fires when the copy (source export → joiner apply → ack) has not
        completed within ``join_timeout`` — e.g. the snapshot source
        crashed mid-copy. The joiner is evicted again so failure handling
        (serialized behind joins) resumes; the joiner's host keeps
        retrying and the next attempt picks a source from the then-current
        view, which no longer contains a crashed source.
        """
        if self._joining != joiner or self._join_epoch != epoch:
            return  # completed (or superseded) in time
        self.joins_cancelled += 1
        self._joining = None
        self._join_epoch = 0
        self._propose(self.view.without(joiner), acceptors=self.view.members - {joiner})

    def _on_join_copied(self, message: JoinCopied) -> None:
        if self._joining != message.joiner or message.epoch_id != self._join_epoch:
            return  # stale ack from a cancelled attempt
        self._joining = None
        self._join_epoch = 0
        self.joins_completed += 1

    def _after_install(self, view: MembershipView) -> None:
        """Continue the migration/join state machines after a view installed."""
        joiner = self._joining
        if joiner is not None and self._join_epoch == 0:
            if joiner in view.members:
                # The view re-admitting the joiner is installed: stream it
                # a state snapshot from a deterministic live source, and
                # bound the handshake with a watchdog.
                self._join_epoch = view.epoch_id
                others = sorted(view.members - {joiner})
                source = others[joiner % len(others)]
                copy = JoinCopy(epoch_id=view.epoch_id, joiner=joiner)
                self.send(source, copy, copy.size_bytes)
                self.set_timer(
                    self.config.join_timeout, self._join_watchdog, joiner, view.epoch_id
                )
            else:
                # Paxos value adoption surfaced a different pending view:
                # drop this attempt (the joiner's host retries).
                self._joining = None
        record = self._migrating
        shard_map = view.shard_map
        if shard_map is None:
            return
        if record is None:
            if shard_map.phase == SHARD_MAP_PREPARING and shard_map.migrations:
                # A watchdog-cancelled migration's preparing view surfaced
                # anyway (Paxos value adoption from an earlier accept):
                # cancel it immediately so nodes do not stay frozen. The
                # watchdog already counted the cancellation.
                cancelled = ShardMap(
                    epoch=view.epoch_id + 1,
                    migrations=shard_map.migrations[:-1],
                    phase=SHARD_MAP_CANCELLED,
                    cancelled=shard_map.migrations[-1],
                )
                self._propose(
                    view.with_shard_map(cancelled), acceptors=view.members
                )
            return
        if shard_map.phase == SHARD_MAP_PREPARING:
            record.freeze_time = self.sim.now
        elif shard_map.phase == SHARD_MAP_ACTIVE:
            record.flip_time = self.sim.now
            self.migrations_completed += 1
            self.migration_records.append(record)
            self._migrating = None
            self._frozen_acks = set()

    def _on_migration_frozen(self, src: NodeId, message: MigrationFrozen) -> None:
        record = self._migrating
        if record is None or message.epoch_id != self.view.epoch_id:
            return
        self._frozen_acks.add(src)
        if not self.view.members.issubset(self._frozen_acks):
            return
        record.frozen_time = self.sim.now
        # The copy is performed by the source shard's lock-master node
        # (matching ReplicaNode.role_ring / TxnCoordinator.masters).
        members = sorted(self.view.members)
        copier = members[record.migration.source % len(members)]
        copy = MigrationCopy(epoch_id=self.view.epoch_id, migration=record.migration)
        self.send(copier, copy, copy.size_bytes)

    def _on_migration_copied(self, message: MigrationCopied) -> None:
        record = self._migrating
        if record is None or message.epoch_id != self.view.epoch_id:
            return
        if record.copied_time:
            return  # duplicate ack
        record.copied_time = self.sim.now
        record.values = dict(message.values or {})
        active = ShardMap(
            epoch=self.view.epoch_id + 1,
            migrations=self._applied_migrations() + (record.migration,),
            phase=SHARD_MAP_ACTIVE,
        )
        new_view = MembershipView(
            epoch_id=self.view.epoch_id + 1,
            members=self.view.members,
            shard_map=active,
        )
        self._propose(new_view, acceptors=self.view.members)
