"""The reliable membership (RM) service process.

The service plays the role that the paper attributes to the datacenter's RM
infrastructure (§2.4, §6.6): it probes replicas, detects failures with a
conservative timeout, waits for the expiry of outstanding leases, decides the
new membership through a majority-based Paxos round among the surviving
replicas, and installs the resulting m-update on every live replica.

The service is itself a :class:`~repro.sim.node.NodeProcess` so that its
messages traverse the simulated network and experience realistic delays —
this is what produces the unavailability window visible in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.membership.detector import FailureDetector, FailureDetectorConfig
from repro.membership.messages import (
    Accept,
    Accepted,
    LeaseGrant,
    MembershipMessage,
    MUpdate,
    Nack,
    Ping,
    Pong,
    Prepare,
    Promise,
)
from repro.membership.paxos import PaxosProposer
from repro.membership.view import MembershipView
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import NodeProcess, ServiceTimeModel
from repro.types import NodeId


@dataclass
class MembershipConfig:
    """Configuration of the RM service.

    Attributes:
        lease_duration: Validity period of granted leases.
        renewal_interval: How often leases are refreshed (must be shorter than
            the lease duration so live nodes never observe an expired lease).
        detection: Failure detector settings (ping interval / timeout).
        service_node_id: Node id used by the RM service on the network.
    """

    lease_duration: float = 40e-3
    renewal_interval: float = 10e-3
    detection: FailureDetectorConfig = field(default_factory=FailureDetectorConfig)
    service_node_id: NodeId = 10_000

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for invalid settings."""
        if self.lease_duration <= 0:
            raise ConfigurationError("lease_duration must be positive")
        if self.renewal_interval <= 0 or self.renewal_interval >= self.lease_duration:
            raise ConfigurationError("renewal_interval must be positive and < lease_duration")
        self.detection.validate()


class MembershipService(NodeProcess):
    """Drives failure detection, lease renewal and membership reconfiguration."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        initial_view: MembershipView,
        config: Optional[MembershipConfig] = None,
    ) -> None:
        self.config = config or MembershipConfig()
        self.config.validate()
        super().__init__(
            node_id=self.config.service_node_id,
            sim=sim,
            network=network,
            service_model=ServiceTimeModel(base=0.1e-6, per_byte=0.0, worker_threads=1),
        )
        self.view = initial_view
        self.detector = FailureDetector(
            self.config.detection, monitored=initial_view.members, now=sim.now
        )
        self._ping_sequence = 0
        self._last_lease_grant: Dict[NodeId, float] = {}
        self._reconfiguring = False
        self._pending_removals: Set[NodeId] = set()
        self._proposer: Optional[PaxosProposer] = None
        self._started = False
        self.reconfigurations = 0
        #: Times at which each epoch became installed (for Figure 9 analysis).
        self.reconfiguration_times: List[float] = []

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Begin pinging, lease renewal and failure monitoring."""
        if self._started:
            return
        self._started = True
        self._grant_leases()
        self.set_timer(self.config.detection.ping_interval, self._ping_tick)
        self.set_timer(self.config.renewal_interval, self._lease_tick)

    # ----------------------------------------------------------- NodeProcess
    def on_message(self, src: NodeId, message: MembershipMessage) -> None:
        """Handle replies from replicas (pongs and Paxos responses)."""
        if isinstance(message, Pong):
            self.detector.record_heartbeat(src, self.sim.now)
            return
        if isinstance(message, Promise):
            self._on_promise(src, message)
            return
        if isinstance(message, Accepted):
            self._on_accepted(src, message)
            return
        if isinstance(message, Nack):
            self._on_nack(message)
            return
        # Other message kinds are not expected at the service; ignore them.

    def on_local_work(self, work) -> None:  # pragma: no cover - not used
        raise NotImplementedError("the membership service takes no local work")

    # -------------------------------------------------------------- periodic
    def _ping_tick(self) -> None:
        self._ping_sequence += 1
        for node in self.view.members:
            self.send(node, Ping(sequence=self._ping_sequence), Ping().size_bytes)
        self._check_failures()
        self.set_timer(self.config.detection.ping_interval, self._ping_tick)

    def _lease_tick(self) -> None:
        if not self._reconfiguring:
            self._grant_leases()
        self.set_timer(self.config.renewal_interval, self._lease_tick)

    def _grant_leases(self) -> None:
        grant = LeaseGrant(view=self.view, duration=self.config.lease_duration)
        for node in self.view.members:
            self._last_lease_grant[node] = self.sim.now
            self.send(node, grant, grant.size_bytes)

    # ----------------------------------------------------- failure handling
    def _check_failures(self) -> None:
        if self._reconfiguring:
            return
        suspected = self.detector.suspected(self.sim.now) & self.view.members
        if not suspected:
            return
        self._reconfiguring = True
        self._pending_removals = suspected
        # Reconfiguration may only proceed once every lease that could still
        # be held by a suspected (or any) node has expired (paper §2.4).
        latest_grant = max(self._last_lease_grant.get(n, 0.0) for n in self.view.members)
        lease_expiry = latest_grant + self.config.lease_duration
        delay = max(0.0, lease_expiry - self.sim.now)
        self.set_timer(delay, self._start_reconfiguration)

    def _start_reconfiguration(self) -> None:
        survivors = self.view.members - self._pending_removals
        if not survivors:
            # Total failure: nothing to reconfigure onto.
            self._reconfiguring = False
            return
        new_view = MembershipView(epoch_id=self.view.epoch_id + 1, members=frozenset(survivors))
        self._proposer = PaxosProposer(
            proposer_id=self.node_id,
            num_acceptors=len(survivors),
            value=(new_view.epoch_id, new_view.members),
        )
        ballot = self._proposer.start_round()
        prepare = Prepare(ballot=ballot)
        for node in survivors:
            self.send(node, prepare, prepare.size_bytes)

    def _on_promise(self, src: NodeId, message: Promise) -> None:
        if self._proposer is None:
            return
        quorum = self._proposer.on_promise(
            src, message.ballot, message.accepted_ballot, message.accepted_value
        )
        if quorum and self._proposer.chosen_value is None and not self._accept_sent():
            accept = Accept(ballot=self._proposer.ballot, value=self._proposer.value)
            for node in self.view.members - self._pending_removals:
                self.send(node, accept, accept.size_bytes)
            self._accept_broadcast_done = True

    def _accept_sent(self) -> bool:
        return getattr(self, "_accept_broadcast_done", False)

    def _on_accepted(self, src: NodeId, message: Accepted) -> None:
        if self._proposer is None:
            return
        if self._proposer.on_accepted(src, message.ballot):
            self._install_chosen_view()

    def _on_nack(self, message: Nack) -> None:
        if self._proposer is None or self._proposer.chosen_value is not None:
            return
        ballot = self._proposer.on_nack(message.promised_ballot)
        self._accept_broadcast_done = False
        prepare = Prepare(ballot=ballot)
        for node in self.view.members - self._pending_removals:
            self.send(node, prepare, prepare.size_bytes)

    def _install_chosen_view(self) -> None:
        assert self._proposer is not None and self._proposer.chosen_value is not None
        epoch_id, members = self._proposer.chosen_value
        self.view = MembershipView(epoch_id=epoch_id, members=members)
        for node in self._pending_removals:
            self.detector.remove(node)
        update = MUpdate(view=self.view, lease_duration=self.config.lease_duration)
        for node in self.view.members:
            self._last_lease_grant[node] = self.sim.now
            self.send(node, update, update.size_bytes)
        self.reconfigurations += 1
        self.reconfiguration_times.append(self.sim.now)
        self._reconfiguring = False
        self._pending_removals = set()
        self._proposer = None
        self._accept_broadcast_done = False
