"""Membership views and leases.

A :class:`MembershipView` is the epoch-tagged set of live replicas. A
:class:`Lease` is the time-bounded permission a replica holds to serve
requests under a given view; a replica whose lease has expired must stop
serving until it obtains a fresh lease (paper §2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.errors import ConfigurationError
from repro.types import NodeId


@dataclass(frozen=True)
class MembershipView:
    """An epoch-tagged membership of live replicas.

    Attributes:
        epoch_id: Monotonically increasing configuration number. Messages are
            tagged with the sender's epoch and dropped on mismatch.
        members: The set of node ids considered live in this epoch.
    """

    epoch_id: int
    members: FrozenSet[NodeId]

    @classmethod
    def initial(cls, members: Iterable[NodeId]) -> "MembershipView":
        """The first view (epoch 1) over the given members."""
        frozen = frozenset(members)
        if not frozen:
            raise ConfigurationError("membership view requires at least one member")
        return cls(epoch_id=1, members=frozen)

    def without(self, *failed: NodeId) -> "MembershipView":
        """A successor view with ``failed`` removed and the epoch bumped."""
        remaining = self.members - frozenset(failed)
        if not remaining:
            raise ConfigurationError("cannot remove every member from the view")
        return MembershipView(epoch_id=self.epoch_id + 1, members=remaining)

    def with_added(self, *joined: NodeId) -> "MembershipView":
        """A successor view with ``joined`` added and the epoch bumped."""
        return MembershipView(epoch_id=self.epoch_id + 1, members=self.members | frozenset(joined))

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` is a member of this view."""
        return node in self.members

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    def majority(self) -> int:
        """Size of a majority quorum of this view."""
        return len(self.members) // 2 + 1

    def others(self, node: NodeId) -> FrozenSet[NodeId]:
        """Members other than ``node``."""
        return self.members - {node}


@dataclass
class Lease:
    """A membership lease held by a replica.

    Attributes:
        epoch_id: The epoch for which the lease is valid.
        expires_at: Local-clock time at which the lease expires.
    """

    epoch_id: int
    expires_at: float

    def valid(self, local_time: float) -> bool:
        """Whether the lease is still valid at the given local-clock time."""
        return local_time < self.expires_at

    def renewed(self, new_expiry: float) -> "Lease":
        """Return a copy of this lease extended to ``new_expiry``."""
        return Lease(epoch_id=self.epoch_id, expires_at=max(self.expires_at, new_expiry))
