"""Membership views, shard maps and leases.

A :class:`MembershipView` is the epoch-tagged set of live replicas. On
sharded clusters the view is *shard-aware*: it optionally carries a
:class:`ShardMap` describing the key→shard routing epoch, which is how live
shard migrations are propagated — a rebalance is just another Paxos-decided
view change whose shard map moves a slice of one shard's key range to
another shard (see :mod:`repro.cluster.sharding` for the execution side).

A :class:`Lease` is the time-bounded permission a replica holds to serve
requests under a given view; a replica whose lease has expired must stop
serving until it obtains a fresh lease (paper §2.4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.types import Key, NodeId


def shard_and_sub(key: Key, num_shards: int) -> "Tuple[int, int]":
    """The (base shard, sub-index) of a key under stable hash partitioning.

    The single source of truth for how keys split into a shard and a
    within-shard sub-index: integers partition by modulo, other key types
    by CRC-32 of their ``repr`` (stable across processes and Python hash
    randomization). Freeze filters, migration copies and slice predicates
    all build on this; :class:`repro.cluster.sharding.ShardRouter` inlines
    the same arithmetic on its per-operation hot path — keep them in sync.
    """
    if type(key) is int:
        return key % num_shards, key // num_shards
    digest = zlib.crc32(repr(key).encode("utf-8"))
    return digest % num_shards, digest // num_shards


@dataclass(frozen=True)
class ShardMigration:
    """A transfer of part of one shard's key range to another shard.

    The migrated slice is described declaratively so it travels compactly
    inside views: of the keys hash-partitioned to ``source``, every key
    whose sub-index (the key's position within the shard's range) is
    congruent to ``offset`` modulo ``stride`` moves to ``target``. The
    default ``stride=2, offset=0`` moves half of the source shard's range.

    Attributes:
        source: Shard currently owning the migrated keys.
        target: Shard that owns them after the flip.
        stride: Modulus of the sub-index filter selecting migrated keys.
        offset: Residue of the sub-index filter.
    """

    source: int
    target: int
    stride: int = 2
    offset: int = 0

    def validate(self, num_shards: int) -> None:
        """Raise :class:`ConfigurationError` for invalid settings."""
        if not 0 <= self.source < num_shards or not 0 <= self.target < num_shards:
            raise ConfigurationError(
                f"migration shards must lie in [0, {num_shards}); "
                f"got source={self.source}, target={self.target}"
            )
        if self.source == self.target:
            raise ConfigurationError("migration source and target must differ")
        if self.stride < 1 or not 0 <= self.offset < self.stride:
            raise ConfigurationError("migration requires stride >= 1 and 0 <= offset < stride")

    def matches(self, key: Key, num_shards: int) -> bool:
        """Whether ``key`` belongs to the migrated slice, over the **base**
        mapping.

        Uses the same base hash as :class:`repro.cluster.sharding.ShardRouter`
        (modulo for integer keys, CRC-32 otherwise). For a first migration
        this is exactly the set the router re-routes after the flip; when
        earlier migrations already moved keys, the execution layer
        evaluates the slice against the routed chain instead (see
        :func:`repro.cluster.sharding.migration_predicate`).
        """
        base, sub = shard_and_sub(key, num_shards)
        return base == self.source and sub % self.stride == self.offset


#: Phases a shard map moves through while a migration is in flight.
SHARD_MAP_PREPARING = "preparing"
SHARD_MAP_ACTIVE = "active"
#: A migration abandoned before its flip (e.g. a node crashed mid-freeze):
#: nodes unfreeze and release parked operations back to the source shard;
#: routing never moved.
SHARD_MAP_CANCELLED = "cancelled"


@dataclass(frozen=True)
class ShardMap:
    """Epoch-tagged key→shard routing state carried by shard-aware views.

    Attributes:
        epoch: Routing epoch; routers only ever move forward to higher
            epochs (:meth:`repro.cluster.sharding.ShardRouter.apply`).
        migrations: The **cumulative** ordered migrations applied on top of
            the base hash mapping — routers must retain every completed
            rebalance, not only the newest, so each successive shard map
            carries the whole chain. During ``preparing``/``active`` the
            in-flight migration is ``migrations[-1]``.
        phase: ``"preparing"`` while the migrated keys are frozen and
            copied; ``"active"`` once routers must serve the new mapping;
            ``"cancelled"`` when an in-flight migration was abandoned
            (``migrations`` then excludes it — routing never moved).
        cancelled: The abandoned migration of a ``cancelled`` map (nodes
            use it to unfreeze the parked operations at its source).
    """

    epoch: int
    migrations: Tuple[ShardMigration, ...] = ()
    phase: str = SHARD_MAP_ACTIVE
    cancelled: Optional[ShardMigration] = None


@dataclass(frozen=True)
class MembershipView:
    """An epoch-tagged membership of live replicas.

    Attributes:
        epoch_id: Monotonically increasing configuration number. Messages are
            tagged with the sender's epoch and dropped on mismatch.
        members: The set of node ids considered live in this epoch.
        shard_map: Key→shard routing state on sharded clusters (``None``
            for unsharded deployments and sharded ones that never migrated).
    """

    epoch_id: int
    members: FrozenSet[NodeId]
    shard_map: Optional[ShardMap] = None

    @classmethod
    def initial(cls, members: Iterable[NodeId]) -> "MembershipView":
        """The first view (epoch 1) over the given members."""
        frozen = frozenset(members)
        if not frozen:
            raise ConfigurationError("membership view requires at least one member")
        return cls(epoch_id=1, members=frozen)

    def without(self, *failed: NodeId) -> "MembershipView":
        """A successor view with ``failed`` removed and the epoch bumped."""
        remaining = self.members - frozenset(failed)
        if not remaining:
            raise ConfigurationError("cannot remove every member from the view")
        return MembershipView(
            epoch_id=self.epoch_id + 1, members=remaining, shard_map=self.shard_map
        )

    def with_added(self, *joined: NodeId) -> "MembershipView":
        """A successor view with ``joined`` added and the epoch bumped."""
        return MembershipView(
            epoch_id=self.epoch_id + 1,
            members=self.members | frozenset(joined),
            shard_map=self.shard_map,
        )

    def with_shard_map(self, shard_map: ShardMap) -> "MembershipView":
        """A successor view installing ``shard_map`` with the epoch bumped."""
        return MembershipView(
            epoch_id=self.epoch_id + 1, members=self.members, shard_map=shard_map
        )

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` is a member of this view."""
        return node in self.members

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    def majority(self) -> int:
        """Size of a majority quorum of this view."""
        return len(self.members) // 2 + 1

    def others(self, node: NodeId) -> FrozenSet[NodeId]:
        """Members other than ``node``."""
        return self.members - {node}


@dataclass
class Lease:
    """A membership lease held by a replica.

    Attributes:
        epoch_id: The epoch for which the lease is valid.
        expires_at: Local-clock time at which the lease expires.
    """

    epoch_id: int
    expires_at: float

    def valid(self, local_time: float) -> bool:
        """Whether the lease is still valid at the given local-clock time."""
        return local_time < self.expires_at

    def renewed(self, new_expiry: float) -> "Lease":
        """Return a copy of this lease extended to ``new_expiry``."""
        return Lease(epoch_id=self.epoch_id, expires_at=max(self.expires_at, new_expiry))
