"""Single-decree Paxos used for membership reconfiguration.

The paper's reliable membership is maintained "through a majority-based
protocol" in the style of Vertical Paxos (§2.4). This module implements the
acceptor and proposer roles as plain state machines; the membership service
and agents drive them by exchanging the messages defined in
:mod:`repro.membership.messages`.

Each membership epoch is decided by an independent single-decree Paxos
instance whose value is the proposed :class:`~repro.membership.view.
MembershipView` itself (epoch, members and — on sharded clusters — the
shard map); the value is opaque to the Paxos machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Set, Tuple

from repro.types import NodeId

#: A Paxos value: the proposed view (opaque to acceptors and proposers).
ViewValue = Any


@dataclass
class PaxosAcceptor:
    """The acceptor role for one reconfiguration instance."""

    promised_ballot: int = -1
    accepted_ballot: Optional[int] = None
    accepted_value: Optional[ViewValue] = None

    def on_prepare(self, ballot: int) -> Tuple[bool, Optional[int], Optional[ViewValue]]:
        """Handle a phase-1a prepare.

        Returns:
            ``(promised, accepted_ballot, accepted_value)`` — ``promised`` is
            False when the ballot is stale and the prepare must be nacked.
        """
        if ballot <= self.promised_ballot:
            return False, None, None
        self.promised_ballot = ballot
        return True, self.accepted_ballot, self.accepted_value

    def on_accept(self, ballot: int, value: ViewValue) -> bool:
        """Handle a phase-2a accept; returns whether the value was accepted."""
        if ballot < self.promised_ballot:
            return False
        self.promised_ballot = ballot
        self.accepted_ballot = ballot
        self.accepted_value = value
        return True


@dataclass
class PaxosProposer:
    """The proposer role for one reconfiguration instance.

    The proposer is ballot-driven: :meth:`start_round` returns the ballot to
    send in Prepare messages; promises and accepts are fed back via
    :meth:`on_promise` / :meth:`on_accepted`. The caller handles message
    transport and retries.
    """

    proposer_id: int
    num_acceptors: int
    value: ViewValue
    _ballot: int = 0
    _promises: Set[NodeId] = field(default_factory=set)
    _accepts: Set[NodeId] = field(default_factory=set)
    _highest_accepted_ballot: int = -1
    chosen_value: Optional[ViewValue] = None

    @property
    def majority(self) -> int:
        """Quorum size over the acceptors."""
        return self.num_acceptors // 2 + 1

    @property
    def ballot(self) -> int:
        """The ballot of the current round."""
        return self._ballot

    def start_round(self, min_ballot: int = 0) -> int:
        """Start a new round with a ballot higher than any seen so far.

        Ballots are made unique across proposers by embedding the proposer id
        in the low bits.
        """
        base = max(self._ballot, min_ballot) // 256 + 1
        self._ballot = base * 256 + (self.proposer_id % 256)
        self._promises.clear()
        self._accepts.clear()
        return self._ballot

    def on_promise(
        self,
        acceptor: NodeId,
        ballot: int,
        accepted_ballot: Optional[int],
        accepted_value: Optional[ViewValue],
    ) -> bool:
        """Record a promise; returns True when a prepare quorum is reached."""
        if ballot != self._ballot:
            return False
        self._promises.add(acceptor)
        if accepted_ballot is not None and accepted_ballot > self._highest_accepted_ballot:
            # Paxos safety: adopt the highest previously accepted value.
            self._highest_accepted_ballot = accepted_ballot
            if accepted_value is not None:
                self.value = accepted_value
        return len(self._promises) >= self.majority

    def on_accepted(self, acceptor: NodeId, ballot: int) -> bool:
        """Record an accepted; returns True when the value is chosen."""
        if ballot != self._ballot:
            return False
        self._accepts.add(acceptor)
        if len(self._accepts) >= self.majority:
            self.chosen_value = self.value
            return True
        return False

    def on_nack(self, promised_ballot: int) -> int:
        """Handle a nack by advancing past the competing ballot."""
        return self.start_round(min_ballot=promised_ballot)
