"""Per-replica reliable-membership participant.

Every replica node owns a :class:`MembershipAgent`. The agent:

* answers liveness probes from the RM service,
* stores the replica's current membership view and lease,
* acts as a Paxos acceptor for membership reconfigurations,
* installs m-updates and notifies the owning protocol node via a callback.

In deployments where no failures are injected (most throughput benchmarks)
the agent can run in *static* mode: it is initialized with a view and an
infinite lease and the RM service is simply not started, avoiding the
(small) CPU cost of pings.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.errors import LeaseExpired, NotInMembership
from repro.membership.messages import (
    Accept,
    Accepted,
    LeaseGrant,
    MembershipMessage,
    MUpdate,
    Nack,
    Ping,
    Pong,
    Prepare,
    Promise,
)
from repro.membership.paxos import PaxosAcceptor
from repro.membership.view import Lease, MembershipView
from repro.types import NodeId

#: Callback invoked when a new view is installed: ``callback(view)``.
ViewChangeCallback = Callable[[MembershipView], None]

#: Function used by the agent to send a message: ``send(dst, message, size)``.
SendFunction = Callable[[NodeId, MembershipMessage, int], None]


class MembershipAgent:
    """The membership participant co-located with a replica."""

    def __init__(
        self,
        node_id: NodeId,
        initial_view: MembershipView,
        send: SendFunction,
        local_clock: Callable[[], float],
        on_view_change: Optional[ViewChangeCallback] = None,
        static_lease: bool = True,
    ) -> None:
        self.node_id = node_id
        self.view = initial_view
        self._send = send
        self._local_clock = local_clock
        self._on_view_change = on_view_change
        expires = math.inf if static_lease else 0.0
        self.lease = Lease(epoch_id=initial_view.epoch_id, expires_at=expires)
        #: True when a running RM service owns this agent's leases. Only
        #: then does a crash invalidate the lease on recovery — without a
        #: service there is nothing to re-grant it (static mode).
        self.service_driven = False
        # One Paxos acceptor per reconfiguration instance, keyed by the epoch
        # being decided (i.e. current epoch + 1, +2, ... under retries).
        self._acceptors: Dict[int, PaxosAcceptor] = {}
        self.views_installed = 0

    # --------------------------------------------------------------- queries
    def is_operational(self) -> bool:
        """Whether this replica may serve requests (valid lease + member)."""
        if self.lease.expires_at == math.inf:
            # Static-lease mode (no RM service): skip the clock read — an
            # infinite lease is valid at every local time.
            return self.node_id in self.view.members
        return self.lease.valid(self._local_clock()) and self.view.contains(self.node_id)

    def require_operational(self) -> None:
        """Raise if the replica must not serve requests right now."""
        if not self.lease.valid(self._local_clock()):
            raise LeaseExpired(f"node {self.node_id} lease expired")
        if not self.view.contains(self.node_id):
            raise NotInMembership(f"node {self.node_id} not in epoch {self.view.epoch_id}")

    @property
    def epoch_id(self) -> int:
        """The epoch of the currently installed view."""
        return self.view.epoch_id

    def invalidate_lease(self) -> None:
        """Expire the lease immediately (a restarted process holds none).

        Called on node recovery when an RM service drives this agent: the
        replica may not serve again until a fresh lease or m-update
        arrives — and if the membership moved on while the node was down,
        neither ever will (the service only grants to view members), so a
        removed node stays non-operational after it restarts.
        """
        self.lease = Lease(epoch_id=self.view.epoch_id, expires_at=0.0)

    # -------------------------------------------------------------- messages
    def handle(self, src: NodeId, message: MembershipMessage) -> bool:
        """Dispatch an RM message; returns False if the type is unknown."""
        if isinstance(message, Ping):
            self._send(src, Pong(sequence=message.sequence), Pong().size_bytes)
            return True
        if isinstance(message, LeaseGrant):
            self._handle_lease_grant(message)
            return True
        if isinstance(message, Prepare):
            self._handle_prepare(src, message)
            return True
        if isinstance(message, Accept):
            self._handle_accept(src, message)
            return True
        if isinstance(message, MUpdate):
            self._install_view(message.view, message.lease_duration)
            return True
        if isinstance(message, (Pong, Promise, Accepted, Nack)):
            # Replica agents do not act as proposers; ignore stray replies.
            return True
        return False

    # ------------------------------------------------------------- internals
    def _handle_lease_grant(self, message: LeaseGrant) -> None:
        if message.view.epoch_id < self.view.epoch_id:
            return
        if message.view.epoch_id > self.view.epoch_id:
            self._install_view(message.view, message.duration)
            return
        new_expiry = self._local_clock() + message.duration
        self.lease = self.lease.renewed(new_expiry)

    def _acceptor_for(self, instance: int) -> PaxosAcceptor:
        return self._acceptors.setdefault(instance, PaxosAcceptor())

    def _handle_prepare(self, src: NodeId, message: Prepare) -> None:
        acceptor = self._acceptor_for(self.view.epoch_id + 1)
        promised, accepted_ballot, accepted_value = acceptor.on_prepare(message.ballot)
        if promised:
            reply = Promise(
                ballot=message.ballot,
                accepted_ballot=accepted_ballot,
                accepted_value=accepted_value,
            )
        else:
            reply = Nack(promised_ballot=acceptor.promised_ballot)
        self._send(src, reply, reply.size_bytes)

    def _handle_accept(self, src: NodeId, message: Accept) -> None:
        acceptor = self._acceptor_for(self.view.epoch_id + 1)
        if acceptor.on_accept(message.ballot, message.value):
            reply: MembershipMessage = Accepted(ballot=message.ballot)
        else:
            reply = Nack(promised_ballot=acceptor.promised_ballot)
        self._send(src, reply, reply.size_bytes)

    def _install_view(self, view: MembershipView, lease_duration: float) -> None:
        if view.epoch_id <= self.view.epoch_id:
            return
        self.view = view
        expires = self._local_clock() + lease_duration if lease_duration else math.inf
        self.lease = Lease(epoch_id=view.epoch_id, expires_at=expires)
        self.views_installed += 1
        if self._on_view_change is not None:
            self._on_view_change(view)
