"""Timeout-based failure detection.

Failure detectors in a partially synchronous system are necessarily
unreliable: they can suspect live nodes (false positives). The membership
machinery tolerates this because reconfiguration only happens after lease
expiration (paper §2.4), which is why the detector here is a simple
last-heartbeat timeout tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from repro.errors import ConfigurationError
from repro.types import NodeId


@dataclass
class FailureDetectorConfig:
    """Configuration of the timeout-based failure detector.

    Attributes:
        ping_interval: How often the RM service probes each replica.
        detection_timeout: How long a replica may stay silent before it is
            suspected. Figure 9 of the paper uses a conservative 150 ms.
    """

    ping_interval: float = 10e-3
    detection_timeout: float = 150e-3

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for invalid settings."""
        if self.ping_interval <= 0:
            raise ConfigurationError("ping_interval must be positive")
        if self.detection_timeout <= 0:
            raise ConfigurationError("detection_timeout must be positive")
        if self.detection_timeout < self.ping_interval:
            raise ConfigurationError("detection_timeout must be >= ping_interval")


class FailureDetector:
    """Tracks per-node heartbeats and reports suspected nodes."""

    def __init__(self, config: FailureDetectorConfig, monitored: Iterable[NodeId], now: float = 0.0):
        config.validate()
        self.config = config
        self._last_heard: Dict[NodeId, float] = {node: now for node in monitored}

    @property
    def monitored(self) -> Set[NodeId]:
        """The nodes currently being monitored."""
        return set(self._last_heard)

    def record_heartbeat(self, node: NodeId, time: float) -> None:
        """Record that ``node`` was heard from at ``time``."""
        if node in self._last_heard:
            self._last_heard[node] = max(self._last_heard[node], time)

    def add(self, node: NodeId, time: float) -> None:
        """Start monitoring an additional node."""
        self._last_heard.setdefault(node, time)

    def remove(self, node: NodeId) -> None:
        """Stop monitoring a node (e.g. after it was removed from the view)."""
        self._last_heard.pop(node, None)

    def suspected(self, time: float) -> Set[NodeId]:
        """Nodes that have been silent longer than the detection timeout."""
        timeout = self.config.detection_timeout
        return {
            node
            for node, last in self._last_heard.items()
            if time - last > timeout
        }

    def last_heard(self, node: NodeId) -> float:
        """Last heartbeat time recorded for ``node``."""
        return self._last_heard[node]
