"""Reliable membership (RM) substrate.

Membership-based protocols such as Hermes rely on a reliable membership
service (paper §2.4): a majority-based (Vertical-Paxos-like) mechanism that
maintains a lease-guarded view of the live replicas and only reconfigures
after leases expire, so that removed nodes have provably stopped serving
requests before new requests complete without them.

This package provides:

* :mod:`repro.membership.view` — epoch-tagged membership views and leases.
* :mod:`repro.membership.messages` — RM wire messages.
* :mod:`repro.membership.paxos` — single-decree Paxos used for m-updates.
* :mod:`repro.membership.detector` — timeout-based failure detection.
* :mod:`repro.membership.agent` — per-replica RM participant.
* :mod:`repro.membership.service` — the RM service process driving pings,
  detection, reconfiguration and lease management.
"""

from repro.membership.agent import MembershipAgent
from repro.membership.detector import FailureDetector, FailureDetectorConfig
from repro.membership.paxos import PaxosAcceptor, PaxosProposer
from repro.membership.service import MembershipConfig, MembershipService
from repro.membership.view import Lease, MembershipView

__all__ = [
    "FailureDetector",
    "FailureDetectorConfig",
    "Lease",
    "MembershipAgent",
    "MembershipConfig",
    "MembershipService",
    "MembershipView",
    "PaxosAcceptor",
    "PaxosProposer",
]
