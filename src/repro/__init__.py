"""repro: a reproduction of Hermes (ASPLOS 2020) as a Python library.

Hermes (Katsarakis et al., ASPLOS 2020) is a broadcast-based, invalidation-
driven, fault-tolerant replication protocol providing linearizability with
local reads and fast, decentralized, inter-key-concurrent writes. This
package implements the protocol, the substrates it relies on (an in-memory
KVS, a Wings-style RPC layer, a reliable-membership service), the baselines
it is evaluated against (CRAQ, CR, ZAB, a Derecho-style total-order
protocol), and a discrete-event simulation harness that reproduces the
paper's evaluation.

Quickstart::

    from repro import Cluster, ClusterConfig, Operation

    cluster = Cluster(ClusterConfig(protocol="hermes", num_replicas=5))
    replica = cluster.replica(0)
    done = []
    replica.submit(Operation.write("greeting", "hello"), lambda op, st, v: done.append(st))
    cluster.run(until=0.01)

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/`` for
the reproduction of every figure and table in the paper's evaluation.
"""

from repro.bench.harness import ExperimentResult, ExperimentSpec, Scale, run_experiment
from repro.cluster.client import ClosedLoopClient, OpenLoopClient, run_clients
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.failures import FailureEvent, FailureInjector, FailureKind
from repro.core.config import HermesConfig
from repro.core.replica import HermesReplica
from repro.core.state import KeyState
from repro.core.timestamps import Timestamp
from repro.errors import ReproError
from repro.membership.view import MembershipView
from repro.protocols.base import ProtocolFeatures, ReplicaConfig, protocol_registry
from repro.protocols.chain import ChainReplicationReplica
from repro.protocols.craq import CraqReplica
from repro.protocols.derecho import DerechoReplica
from repro.protocols.zab import ZabReplica
from repro.types import Operation, OperationResult, OpStatus, OpType
from repro.verification.history import History
from repro.verification.linearizability import LinearizabilityChecker, check_history
from repro.workloads.distributions import UniformKeys, ZipfianKeys
from repro.workloads.generator import WorkloadMix

__version__ = "1.0.0"

__all__ = [
    "ChainReplicationReplica",
    "ClosedLoopClient",
    "Cluster",
    "ClusterConfig",
    "CraqReplica",
    "DerechoReplica",
    "ExperimentResult",
    "ExperimentSpec",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "HermesConfig",
    "HermesReplica",
    "History",
    "KeyState",
    "LinearizabilityChecker",
    "MembershipView",
    "OpStatus",
    "OpType",
    "OpenLoopClient",
    "Operation",
    "OperationResult",
    "ProtocolFeatures",
    "ReplicaConfig",
    "ReproError",
    "Scale",
    "Timestamp",
    "UniformKeys",
    "WorkloadMix",
    "ZabReplica",
    "ZipfianKeys",
    "check_history",
    "protocol_registry",
    "run_clients",
    "run_experiment",
    "__version__",
]
