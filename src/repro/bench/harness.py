"""Experiment runner shared by every benchmark.

An :class:`ExperimentSpec` fully describes one measurement point: protocol,
replication degree, workload (write ratio, key distribution, value size),
offered load (closed-loop clients) and duration (operations per client). The
runner builds the cluster, drives it, and reduces the recorded
:class:`~repro.types.OperationResult` records into an
:class:`ExperimentResult` with throughput and latency summaries.

Scaling: the paper's runs use one million keys and minutes of wall-clock
time; the simulated reproduction keeps the same *structure* but runs far
fewer operations by default so the full benchmark suite completes in
minutes. :class:`Scale` presets ("smoke", "default", "thorough") control the
sizes; absolute numbers change with scale, relative protocol behaviour does
not.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import random

from repro.analysis.stats import LatencySummary, latency_summary, throughput
from repro.cluster.client import ClientSession, ClosedLoopClient, OpenLoopClient, run_clients
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.config import HermesConfig
from repro.errors import BenchmarkError
from repro.protocols.base import ReplicaConfig
from repro.protocols.derecho import DerechoConfig
from repro.sim.node import ServiceTimeModel
from repro.types import OperationResult, OpType
from repro.verification.history import History
from repro.workloads.distributions import UniformKeys, ZipfianKeys
from repro.workloads.generator import WorkloadMix


@dataclass(frozen=True)
class Scale:
    """Run-size preset for experiments.

    Attributes:
        name: Preset name.
        num_keys: Size of the key space.
        clients_per_replica: Closed-loop sessions bound to each replica.
        ops_per_client: Operations issued by each session.
    """

    name: str
    num_keys: int
    clients_per_replica: int
    ops_per_client: int

    @classmethod
    def smoke(cls) -> "Scale":
        """Tiny runs for CI smoke tests (seconds)."""
        return cls("smoke", num_keys=500, clients_per_replica=4, ops_per_client=60)

    @classmethod
    def default(cls) -> "Scale":
        """The default benchmark size (a few minutes for the full suite)."""
        return cls("default", num_keys=4_000, clients_per_replica=10, ops_per_client=200)

    @classmethod
    def thorough(cls) -> "Scale":
        """Larger runs for tighter estimates."""
        return cls("thorough", num_keys=20_000, clients_per_replica=20, ops_per_client=600)


@dataclass
class ExperimentSpec:
    """One measurement point.

    Attributes:
        protocol: Protocol registry name.
        num_replicas: Replication degree.
        write_ratio: Fraction of updates in the workload.
        rmw_ratio: Fraction of updates that are RMWs.
        zipfian_exponent: ``None`` for uniform keys, otherwise the exponent.
        num_keys: Key-space size.
        value_size: Written value size in bytes.
        clients_per_replica: Client sessions per replica.
        ops_per_client: Operations per session.
        client_model: ``"closed"`` (one outstanding request per session) or
            ``"open"`` (Poisson arrivals at a fixed offered load).
        offered_load: Aggregate offered load in operations per simulated
            second, split evenly across all open-loop sessions. Required
            when ``client_model == "open"``; ignored for closed loops.
        seed: Root seed.
        use_wings: Whether replicas use the Wings batching transport.
        worker_threads: Per-node worker threads (Figure 8 pins this to 1).
        hermes: Optional Hermes configuration override.
        derecho: Optional Derecho configuration override.
        record_history: Whether to record a linearizability-checkable history.
        max_sim_time: Safety cap on simulated seconds.
        label: Free-form label carried into the result.
    """

    protocol: str = "hermes"
    num_replicas: int = 5
    write_ratio: float = 0.05
    rmw_ratio: float = 0.0
    zipfian_exponent: Optional[float] = None
    num_keys: int = 4_000
    value_size: int = 32
    clients_per_replica: int = 3
    ops_per_client: int = 220
    client_model: str = "closed"
    offered_load: Optional[float] = None
    seed: int = 1
    use_wings: bool = False
    worker_threads: int = 20
    hermes: Optional[HermesConfig] = None
    derecho: Optional[DerechoConfig] = None
    record_history: bool = False
    max_sim_time: float = 120.0
    label: str = ""

    def with_scale(self, scale: Scale) -> "ExperimentSpec":
        """A copy of this spec resized to the given scale preset."""
        return replace(
            self,
            num_keys=scale.num_keys,
            clients_per_replica=scale.clients_per_replica,
            ops_per_client=scale.ops_per_client,
        )


@dataclass
class ExperimentResult:
    """Reduced results of one experiment run.

    Attributes:
        spec: The spec that produced the result.
        throughput: Steady-state completed operations per simulated second.
        overall_latency: Latency summary over all operations.
        read_latency: Latency summary over reads.
        write_latency: Latency summary over updates (writes + RMWs).
        duration: Simulated duration of the run in seconds.
        results: Raw per-operation results (for time series / custom stats).
        history: Recorded history when the spec requested one.
        cluster_stats: Selected protocol counters summed over replicas.
    """

    spec: ExperimentSpec
    throughput: float
    overall_latency: LatencySummary
    read_latency: LatencySummary
    write_latency: LatencySummary
    duration: float
    results: List[OperationResult] = field(default_factory=list)
    history: Optional[History] = None
    cluster_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def mreqs_per_sec(self) -> float:
        """Throughput in millions of requests per simulated second."""
        return self.throughput / 1e6


def build_cluster(spec: ExperimentSpec) -> Cluster:
    """Construct the cluster described by an experiment spec."""
    replica_config = ReplicaConfig(value_size=spec.value_size)
    hermes_config = spec.hermes or HermesConfig(replica=replica_config)
    hermes_config.replica = replica_config
    config = ClusterConfig(
        protocol=spec.protocol,
        num_replicas=spec.num_replicas,
        seed=spec.seed,
        replica=replica_config,
        hermes=hermes_config,
        derecho=spec.derecho or DerechoConfig(),
        use_wings=spec.use_wings,
        service_model=ServiceTimeModel(worker_threads=spec.worker_threads),
    )
    return Cluster(config)


def build_workload(spec: ExperimentSpec) -> WorkloadMix:
    """Construct the workload described by an experiment spec."""
    if spec.zipfian_exponent is None:
        distribution = UniformKeys(spec.num_keys)
    else:
        distribution = ZipfianKeys(spec.num_keys, exponent=spec.zipfian_exponent)
    return WorkloadMix(
        distribution=distribution,
        write_ratio=spec.write_ratio,
        rmw_ratio=spec.rmw_ratio,
        value_size=spec.value_size,
        seed=spec.seed,
    )


def build_clients(
    spec: ExperimentSpec, cluster: Cluster, workload: WorkloadMix, history: Optional[History]
) -> List[ClientSession]:
    """Construct the client sessions described by an experiment spec."""
    if spec.client_model not in ("closed", "open"):
        raise BenchmarkError(
            f"unknown client_model {spec.client_model!r}; options: 'closed', 'open'"
        )
    open_loop = spec.client_model == "open"
    if open_loop:
        if not spec.offered_load or spec.offered_load <= 0:
            raise BenchmarkError("open-loop experiments require a positive offered_load")
        total_sessions = spec.num_replicas * spec.clients_per_replica
        rate_per_client = spec.offered_load / total_sessions
    clients: List[ClientSession] = []
    client_id = 0
    for node_id in cluster.node_ids:
        for _ in range(spec.clients_per_replica):
            if open_loop:
                clients.append(
                    OpenLoopClient(
                        client_id=client_id,
                        cluster=cluster,
                        workload=workload,
                        rate=rate_per_client,
                        max_ops=spec.ops_per_client,
                        replica_id=node_id,
                        history=history,
                        rng=random.Random(
                            (spec.seed * 1_000_003 + 7_919 * (client_id + 1)) & 0x7FFFFFFF
                        ),
                    )
                )
            else:
                clients.append(
                    ClosedLoopClient(
                        client_id=client_id,
                        cluster=cluster,
                        workload=workload,
                        max_ops=spec.ops_per_client,
                        replica_id=node_id,
                        history=history,
                    )
                )
            client_id += 1
    return clients


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Run one experiment end to end and reduce its results."""
    if spec.ops_per_client < 1 or spec.clients_per_replica < 1:
        raise BenchmarkError("experiment requires at least one client and one operation")
    cluster = build_cluster(spec)
    workload = build_workload(spec)
    cluster.preload(workload.initial_dataset())

    history = History() if spec.record_history else None
    clients = build_clients(spec, cluster, workload, history)

    duration = run_clients(cluster, clients, max_time=spec.max_sim_time)

    results: List[OperationResult] = []
    for client in clients:
        results.extend(client.results)

    stats = {
        "writes_committed": cluster.total_stat("writes_committed"),
        "reads_served_locally": cluster.total_stat("reads_served_locally"),
        "reads_served_remotely": cluster.total_stat("reads_served_remotely"),
        "replays_started": cluster.total_stat("replays_started"),
        "rmws_aborted": cluster.total_stat("rmws_aborted"),
        "inv_retransmissions": cluster.total_stat("inv_retransmissions"),
        "messages_sent": cluster.network.stats.messages_sent,
    }

    return ExperimentResult(
        spec=spec,
        throughput=throughput(results),
        overall_latency=latency_summary(results),
        read_latency=latency_summary(results, op_type=OpType.READ),
        write_latency=latency_summary(
            [r for r in results if r.op.op_type is not OpType.READ], op_type=None
        ),
        duration=duration,
        results=results,
        history=history,
        cluster_stats=stats,
    )
