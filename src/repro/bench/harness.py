"""Experiment runner shared by every benchmark.

An :class:`ExperimentSpec` fully describes one measurement point: protocol,
replication degree, workload (write ratio, key distribution, value size),
offered load (closed-loop clients) and duration (operations per client). The
runner builds the cluster, drives it, and reduces the recorded
:class:`~repro.types.OperationResult` records into an
:class:`ExperimentResult` with throughput and latency summaries.

Scaling: the paper's runs use one million keys and minutes of wall-clock
time; the simulated reproduction keeps the same *structure* but runs far
fewer operations by default so the full benchmark suite completes in
minutes. :class:`Scale` presets ("smoke", "default", "thorough") control the
sizes; absolute numbers change with scale, relative protocol behaviour does
not.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import random

from repro.analysis.stats import LatencySummary, latency_summary, throughput
from repro.cluster.client import (
    CLIENT_LATENCY_JITTER,
    DEFAULT_REQUEST_LATENCY,
    AggregatedClient,
    ClientSession,
    ClosedLoopClient,
    OpenLoopClient,
    run_clients,
)
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.sharding import ShardRouter
from repro.core.config import HermesConfig
from repro.errors import BenchmarkError
from repro.membership.service import MembershipConfig, MigrationRecord, PlannedMigration
from repro.protocols.base import ReplicaConfig
from repro.protocols.derecho import DerechoConfig
from repro.sim.node import ServiceTimeModel
from repro.sim.rng import SeededRNG
from repro.types import OperationResult, OpType
from repro.verification.history import History
from repro.workloads.aggregate import (
    ScheduleEntry,
    materialize_open_schedule,
    split_sessions,
)
from repro.workloads.distributions import UniformKeys, ZipfianKeys
from repro.workloads.generator import ScriptedOps, WorkloadMix

#: Valid values of :attr:`ExperimentSpec.shard_mode`.
SHARD_MODES = ("coupled", "parallel")


@dataclass(frozen=True)
class Scale:
    """Run-size preset for experiments.

    Attributes:
        name: Preset name.
        num_keys: Size of the key space.
        clients_per_replica: Closed-loop sessions bound to each replica.
        ops_per_client: Operations issued by each session.
    """

    name: str
    num_keys: int
    clients_per_replica: int
    ops_per_client: int

    @classmethod
    def smoke(cls) -> "Scale":
        """Tiny runs for CI smoke tests (seconds)."""
        return cls("smoke", num_keys=500, clients_per_replica=4, ops_per_client=60)

    @classmethod
    def default(cls) -> "Scale":
        """The default benchmark size (a few minutes for the full suite)."""
        return cls("default", num_keys=4_000, clients_per_replica=10, ops_per_client=200)

    @classmethod
    def thorough(cls) -> "Scale":
        """Larger runs for tighter estimates."""
        return cls("thorough", num_keys=20_000, clients_per_replica=20, ops_per_client=600)


@dataclass
class ExperimentSpec:
    """One measurement point.

    Attributes:
        protocol: Protocol registry name.
        num_replicas: Replication degree.
        write_ratio: Fraction of updates in the workload.
        rmw_ratio: Fraction of updates that are RMWs.
        zipfian_exponent: ``None`` for uniform keys, otherwise the exponent.
        num_keys: Key-space size.
        value_size: Written value size in bytes.
        clients_per_replica: Client sessions per replica.
        ops_per_client: Operations per session.
        client_model: ``"closed"`` (one outstanding request per session),
            ``"open"`` (Poisson arrivals at a fixed offered load), or
            ``"aggregated"`` (one
            :class:`~repro.cluster.client.AggregatedClient` generator per
            node statistically standing in for ``sessions`` sessions —
            open loop when ``offered_load`` is set, closed loop with
            ``session_think_time`` otherwise).
        offered_load: Aggregate offered load in operations per simulated
            second, split evenly across all open-loop sessions (or across
            the per-node aggregated generators). Required when
            ``client_model == "open"``; ignored for closed loops.
        sessions: Synthetic session population for
            ``client_model == "aggregated"`` (split across the per-node
            generators). ``0`` — the identity-neutral default — falls back
            to ``num_replicas * clients_per_replica``, the population the
            per-session models simulate. The simulated *work* is bounded by
            ``clients_per_replica * ops_per_client`` operations per node
            regardless of the session count, which is what lets a smoke run
            model 10^6 users.
        session_think_time: Mean per-session think time in simulated
            seconds for closed-loop aggregated experiments (each completion
            rechains its session's next request one think time later).
            Ignored — and identity-neutral at ``0.0`` — for every other
            client model.
        shards: Number of key-range shards (independent protocol groups).
            ``1`` is the classic unsharded deployment.
        txn_fraction: Fraction of client requests that are multi-key
            transactions executed by the 2PC layer (:mod:`repro.cluster.txn`).
            ``0.0`` generates the classic single-op stream, byte-identical
            to pre-transaction workloads.
        txn_keys: Distinct keys per generated transaction.
        txn_cross_shard: Probability that a generated transaction spans at
            least two shards (requires ``shards > 1`` to have any effect).
            Cross-shard transactions run full two-phase commit;
            single-shard ones take the lock-master fast path.
        shard_mode: How shards execute. ``"coupled"`` hosts every shard on
            the same simulated nodes inside one simulation — shards share
            node CPU/NIC budgets like HermesKV threads share a machine.
            ``"parallel"`` runs fully independent shards (each a dedicated
            simulation over its key partition, replaying its slice of the
            unsharded request stream) and merges the metrics
            deterministically; the runner fans the shards out across worker
            processes.
        seed: Root seed.
        use_wings: Whether replicas use the Wings batching transport.
        worker_threads: Per-node worker threads (Figure 8 pins this to 1).
        hermes: Optional Hermes configuration override.
        derecho: Optional Derecho configuration override.
        record_history: Whether to record a linearizability-checkable history.
        max_sim_time: Safety cap on simulated seconds.
        label: Free-form label carried into the result.
        faults: Declarative fault schedule
            (:class:`~repro.cluster.failures.FailureEvent` records), armed
            through a :class:`~repro.cluster.failures.FailureInjector`
            before clients start. The empty default is identity-neutral:
            fault-free specs hash to the same cell seed as before the
            field existed.
        run_membership: Whether to start the reliable-membership service
            (crash detection, lease-based views). Implied by
            ``migrations``.
        migrations: Planned live shard migrations
            (:class:`~repro.membership.service.PlannedMigration` records),
            driven by the membership service. Requires ``shards >= 2``.
        membership: Optional membership-service tuning override (lease
            duration, detection timeouts). ``None`` — the identity-neutral
            default — uses the service defaults; the fault-schedule fuzzer
            installs a fast-detection config so view changes land inside
            smoke-scale runs. Any ``migrations`` are merged in on top.
        allow_incomplete: Whether hitting ``max_sim_time`` with client
            operations still outstanding is a normal bounded run rather
            than a :class:`~repro.errors.SimulationDeadlock`. Fault
            schedules may legally wedge clients forever (see
            :func:`repro.cluster.client.run_clients`); the checkers judge
            whatever completed.
    """

    protocol: str = "hermes"
    num_replicas: int = 5
    write_ratio: float = 0.05
    rmw_ratio: float = 0.0
    zipfian_exponent: Optional[float] = None
    num_keys: int = 4_000
    value_size: int = 32
    clients_per_replica: int = 3
    ops_per_client: int = 220
    client_model: str = "closed"
    offered_load: Optional[float] = None
    sessions: int = 0
    session_think_time: float = 0.0
    shards: int = 1
    shard_mode: str = "coupled"
    txn_fraction: float = 0.0
    txn_keys: int = 2
    txn_cross_shard: float = 0.0
    seed: int = 1
    use_wings: bool = False
    worker_threads: int = 20
    hermes: Optional[HermesConfig] = None
    derecho: Optional[DerechoConfig] = None
    record_history: bool = False
    max_sim_time: float = 120.0
    label: str = ""
    faults: Sequence[FailureEvent] = ()
    run_membership: bool = False
    migrations: Sequence[PlannedMigration] = ()
    membership: Optional[MembershipConfig] = None
    allow_incomplete: bool = False

    def with_scale(self, scale: Scale) -> "ExperimentSpec":
        """A copy of this spec resized to the given scale preset."""
        return replace(
            self,
            num_keys=scale.num_keys,
            clients_per_replica=scale.clients_per_replica,
            ops_per_client=scale.ops_per_client,
        )


@dataclass
class ExperimentResult:
    """Reduced results of one experiment run.

    Attributes:
        spec: The spec that produced the result.
        throughput: Steady-state completed operations per simulated second.
        overall_latency: Latency summary over all operations.
        read_latency: Latency summary over reads.
        write_latency: Latency summary over updates (writes + RMWs).
        duration: Simulated duration of the run in seconds.
        results: Raw per-operation results (for time series / custom stats).
        history: Recorded history when the spec requested one.
        cluster_stats: Selected protocol counters summed over replicas.
        migration_records: Completed live migrations of the run (empty
            unless the spec planned migrations); consumed by the
            migration-atomicity checker.
    """

    spec: ExperimentSpec
    throughput: float
    overall_latency: LatencySummary
    read_latency: LatencySummary
    write_latency: LatencySummary
    duration: float
    results: List[OperationResult] = field(default_factory=list)
    history: Optional[History] = None
    cluster_stats: Dict[str, int] = field(default_factory=dict)
    migration_records: List[MigrationRecord] = field(default_factory=list)

    @property
    def mreqs_per_sec(self) -> float:
        """Throughput in millions of requests per simulated second."""
        return self.throughput / 1e6


def build_cluster(spec: ExperimentSpec) -> Cluster:
    """Construct the cluster described by an experiment spec.

    Coupled shard mode builds the sharded cluster directly; parallel shard
    mode never reaches this function with ``shards > 1`` (each shard builds
    its own unsharded cluster, see :func:`run_shard_experiment`).
    """
    replica_config = ReplicaConfig(value_size=spec.value_size)
    hermes_config = spec.hermes or HermesConfig(replica=replica_config)
    hermes_config.replica = replica_config
    run_membership = spec.run_membership or bool(spec.migrations)
    membership = spec.membership or MembershipConfig()
    if spec.migrations:
        membership = replace(membership, migrations=list(spec.migrations))
    config = ClusterConfig(
        protocol=spec.protocol,
        num_replicas=spec.num_replicas,
        shards=spec.shards if spec.shard_mode == "coupled" else 1,
        seed=spec.seed,
        replica=replica_config,
        hermes=hermes_config,
        derecho=spec.derecho or DerechoConfig(),
        use_wings=spec.use_wings,
        service_model=ServiceTimeModel(worker_threads=spec.worker_threads),
        run_membership_service=run_membership,
        membership=membership,
    )
    return Cluster(config)


def build_workload(spec: ExperimentSpec) -> WorkloadMix:
    """Construct the workload described by an experiment spec."""
    if spec.zipfian_exponent is None:
        distribution = UniformKeys(spec.num_keys)
    else:
        distribution = ZipfianKeys(spec.num_keys, exponent=spec.zipfian_exponent)
    return WorkloadMix(
        distribution=distribution,
        write_ratio=spec.write_ratio,
        rmw_ratio=spec.rmw_ratio,
        value_size=spec.value_size,
        seed=spec.seed,
        txn_fraction=spec.txn_fraction,
        txn_keys=spec.txn_keys,
        txn_cross_shard=spec.txn_cross_shard,
        txn_num_shards=spec.shards,
    )


def aggregated_sessions(spec: ExperimentSpec) -> int:
    """The synthetic session population of an aggregated-model spec."""
    return spec.sessions or spec.num_replicas * spec.clients_per_replica


def _build_aggregated_clients(
    spec: ExperimentSpec, cluster: Cluster, workload: WorkloadMix, history: Optional[History]
) -> List[ClientSession]:
    """One AggregatedClient generator per node, sessions split across them.

    The per-node operation budget matches the per-session models
    (``clients_per_replica * ops_per_client``), so matched-load comparisons
    against ``client_model="open"`` complete the same operation count.
    """
    node_ids = cluster.node_ids
    session_counts = split_sessions(aggregated_sessions(spec), len(node_ids))
    ops_budget = spec.clients_per_replica * spec.ops_per_client
    open_loop = bool(spec.offered_load)
    clients: List[ClientSession] = []
    base = 0
    for index, node_id in enumerate(node_ids):
        clients.append(
            AggregatedClient(
                client_id=index,
                cluster=cluster,
                workload=workload,
                sessions=session_counts[index],
                max_ops=ops_budget,
                rate=spec.offered_load / len(node_ids) if open_loop else None,
                think_time=spec.session_think_time,
                replica_id=node_id,
                history=history,
                session_base=base,
                rng=SeededRNG(spec.seed).child(f"aggregated-node-{index}"),
            )
        )
        base += session_counts[index]
    return clients


def build_clients(
    spec: ExperimentSpec, cluster: Cluster, workload: WorkloadMix, history: Optional[History]
) -> List[ClientSession]:
    """Construct the client sessions described by an experiment spec."""
    if spec.client_model not in ("closed", "open", "aggregated"):
        raise BenchmarkError(
            f"unknown client_model {spec.client_model!r}; "
            "options: 'closed', 'open', 'aggregated'"
        )
    if spec.client_model == "aggregated":
        return _build_aggregated_clients(spec, cluster, workload, history)
    open_loop = spec.client_model == "open"
    if open_loop:
        if not spec.offered_load or spec.offered_load <= 0:
            raise BenchmarkError("open-loop experiments require a positive offered_load")
        total_sessions = spec.num_replicas * spec.clients_per_replica
        rate_per_client = spec.offered_load / total_sessions
    clients: List[ClientSession] = []
    client_id = 0
    for node_id in cluster.node_ids:
        for _ in range(spec.clients_per_replica):
            if open_loop:
                clients.append(
                    OpenLoopClient(
                        client_id=client_id,
                        cluster=cluster,
                        workload=workload,
                        rate=rate_per_client,
                        max_ops=spec.ops_per_client,
                        replica_id=node_id,
                        history=history,
                        rng=random.Random(
                            (spec.seed * 1_000_003 + 7_919 * (client_id + 1)) & 0x7FFFFFFF
                        ),
                    )
                )
            else:
                clients.append(
                    ClosedLoopClient(
                        client_id=client_id,
                        cluster=cluster,
                        workload=workload,
                        max_ops=spec.ops_per_client,
                        replica_id=node_id,
                        history=history,
                    )
                )
            client_id += 1
    return clients


def _summarize(
    spec: ExperimentSpec,
    results: List[OperationResult],
    duration: float,
    history: Optional[History],
    stats: Dict[str, int],
) -> ExperimentResult:
    """The one reduction from per-operation records to an ExperimentResult.

    Shared by unsharded runs, per-shard runs and the shard merge, so serial
    and process-parallel executions summarize identically by construction.
    """
    return ExperimentResult(
        spec=spec,
        throughput=throughput(results),
        overall_latency=latency_summary(results),
        read_latency=latency_summary(results, op_type=OpType.READ),
        write_latency=latency_summary(
            [r for r in results if r.op.op_type is not OpType.READ], op_type=None
        ),
        duration=duration,
        results=results,
        history=history,
        cluster_stats=stats,
    )


def _reduce_run(
    spec: ExperimentSpec,
    cluster: Cluster,
    clients: List[ClientSession],
    duration: float,
    history: Optional[History],
) -> ExperimentResult:
    """Reduce a finished run's client records into an ExperimentResult."""
    results: List[OperationResult] = []
    for client in clients:
        results.extend(client.results)

    stats = {
        "writes_committed": cluster.total_stat("writes_committed"),
        "reads_served_locally": cluster.total_stat("reads_served_locally"),
        "reads_served_remotely": cluster.total_stat("reads_served_remotely"),
        "replays_started": cluster.total_stat("replays_started"),
        "rmws_aborted": cluster.total_stat("rmws_aborted"),
        "inv_retransmissions": cluster.total_stat("inv_retransmissions"),
        "messages_sent": cluster.network.stats.messages_sent,
        "txns_committed": cluster.txn_stat("txns_committed"),
        "txns_aborted": cluster.txn_stat("txns_aborted"),
        "txns_timedout": cluster.txn_stat("txns_timedout"),
        "txns_cross_shard": cluster.txn_stat("txns_cross_shard"),
    }
    result = _summarize(spec, results, duration, history, stats)
    result.migration_records = list(cluster.migration_records)
    return result


def _validate_spec(spec: ExperimentSpec) -> None:
    if spec.ops_per_client < 1 or spec.clients_per_replica < 1:
        raise BenchmarkError("experiment requires at least one client and one operation")
    if spec.shards < 1:
        raise BenchmarkError("shards must be >= 1")
    if spec.shard_mode not in SHARD_MODES:
        raise BenchmarkError(
            f"unknown shard_mode {spec.shard_mode!r}; options: {SHARD_MODES}"
        )
    if spec.client_model not in ("closed", "open", "aggregated"):
        raise BenchmarkError(
            f"unknown client_model {spec.client_model!r}; "
            "options: 'closed', 'open', 'aggregated'"
        )
    if spec.client_model == "aggregated":
        if spec.sessions < 0:
            raise BenchmarkError("sessions must be >= 0")
        if not spec.offered_load and spec.session_think_time <= 0:
            raise BenchmarkError(
                "aggregated experiments need an offered_load (open loop) or "
                "a positive session_think_time (closed loop)"
            )
    elif spec.sessions:
        raise BenchmarkError(
            "the sessions knob requires client_model='aggregated' "
            "(per-session models simulate num_replicas * clients_per_replica "
            "sessions)"
        )
    if spec.shards > 1 and spec.shard_mode == "parallel":
        aggregated_open = spec.client_model == "aggregated" and bool(spec.offered_load)
        if spec.client_model != "closed" and not aggregated_open:
            raise BenchmarkError(
                "parallel shard execution supports closed-loop clients and "
                "open-loop aggregated generators only; use "
                "shard_mode='coupled' for other sharded experiments"
            )
    if not 0.0 <= spec.txn_fraction <= 1.0:
        raise BenchmarkError("txn_fraction must be within [0, 1]")
    if spec.txn_fraction > 0 and spec.shards > 1 and spec.shard_mode == "parallel":
        raise BenchmarkError(
            "transactions require shard_mode='coupled': parallel shard "
            "execution runs shards as independent simulations, which cannot "
            "exchange cross-shard 2PC traffic"
        )
    if spec.shards > 1 and spec.shard_mode == "parallel" and (
        spec.faults or spec.run_membership or spec.migrations or spec.membership
    ):
        raise BenchmarkError(
            "fault schedules, membership and migrations require "
            "shard_mode='coupled': parallel shard execution runs shards as "
            "independent simulations with disjoint failure domains"
        )
    if spec.migrations and spec.shards < 2:
        raise BenchmarkError("planned migrations require shards >= 2")


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Run one experiment end to end and reduce its results.

    A spec with ``shards > 1`` and ``shard_mode == "parallel"`` runs its
    shards as independent simulations (serially here; the runner distributes
    them over worker processes) and merges the metrics — the merged result
    is identical either way.
    """
    _validate_spec(spec)
    if spec.shards > 1 and spec.shard_mode == "parallel":
        parts = [run_shard_experiment(spec, shard) for shard in range(spec.shards)]
        return merge_shard_results(spec, parts)
    cluster = build_cluster(spec)
    workload = build_workload(spec)
    cluster.preload(workload.initial_dataset())

    if spec.faults:
        FailureInjector(cluster, spec.faults).arm()

    history = History() if spec.record_history else None
    clients = build_clients(spec, cluster, workload, history)

    duration = run_clients(
        cluster, clients, max_time=spec.max_sim_time, allow_incomplete=spec.allow_incomplete
    )
    return _reduce_run(spec, cluster, clients, duration, history)


# ------------------------------------------------------- sharded execution
def derive_shard_seed(spec: ExperimentSpec, shard: int) -> int:
    """A stable per-shard seed for process-parallel shard execution.

    Mixes the spec's seed with the shard index through SHA-256 so shard
    simulations decorrelate (network jitter, clock skew) while remaining
    reproducible in any process layout.
    """
    payload = repr((spec.seed, spec.shards, shard, "shard")).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1) + 1


def _aggregated_schedules(
    spec: ExperimentSpec, workload: WorkloadMix
) -> List[List[ScheduleEntry]]:
    """Materialize every generator's *unsharded* open-loop timed schedule.

    Seed derivation (one :class:`SeededRNG` child per node index) matches
    :func:`_build_aggregated_clients` exactly, so a parallel-sharded run
    replays the very op stream — same times, keys, latencies — a coupled
    run of the same spec would draw live.
    """
    session_counts = split_sessions(aggregated_sessions(spec), spec.num_replicas)
    ops_budget = spec.clients_per_replica * spec.ops_per_client
    assert spec.offered_load  # _validate_spec: parallel aggregated is open-loop
    rate_per_node = spec.offered_load / spec.num_replicas
    schedules: List[List[ScheduleEntry]] = []
    base = 0
    for index in range(spec.num_replicas):
        schedules.append(
            materialize_open_schedule(
                workload,
                sessions=session_counts[index],
                total_ops=ops_budget,
                rate=rate_per_node,
                rng=SeededRNG(spec.seed).child(f"aggregated-node-{index}"),
                session_base=base,
                request_latency=DEFAULT_REQUEST_LATENCY,
                jitter=CLIENT_LATENCY_JITTER,
            )
        )
        base += session_counts[index]
    return schedules


def run_shard_experiment(spec: ExperimentSpec, shard: int) -> ExperimentResult:
    """Run one shard of a parallel-sharded experiment as its own simulation.

    The shard gets a dedicated (unsharded) cluster over its key partition —
    the scale-out model where every shard owns its resources. Its clients
    replay exactly the operations of the *unsharded* request stream whose
    keys the shard owns, so per-shard runs compose: summed over shards, the
    operation stream is invariant under the shard count. Aggregated-model
    specs replay the generators' materialized timed schedules the same way.
    """
    _validate_spec(spec)
    router = ShardRouter(spec.shards)
    base_workload = build_workload(spec)
    total_sessions = spec.num_replicas * spec.clients_per_replica
    shard_of = router.shard_of
    aggregated = spec.client_model == "aggregated"
    if aggregated:
        shard_schedules = [
            [entry for entry in schedule if shard_of(entry[3].key) == shard]
            for schedule in _aggregated_schedules(spec, base_workload)
        ]
    else:
        scripts = {
            client_id: [
                op
                for op in base_workload.stream(client_id, spec.ops_per_client)
                if shard_of(op.key) == shard
            ]
            for client_id in range(total_sessions)
        }
    shard_seed = derive_shard_seed(spec, shard)
    sub_spec = replace(spec, seed=shard_seed, shards=1, shard_mode="coupled")
    cluster = build_cluster(sub_spec)
    dataset = {
        key: value
        for key, value in base_workload.initial_dataset().items()
        if shard_of(key) == shard
    }
    cluster.preload(dataset)

    history = History() if spec.record_history else None
    clients: List[ClientSession] = []
    if aggregated:
        session_counts = split_sessions(aggregated_sessions(spec), spec.num_replicas)
        base = 0
        for index, node_id in enumerate(cluster.node_ids):
            clients.append(
                AggregatedClient(
                    client_id=index,
                    cluster=cluster,
                    workload=base_workload,
                    sessions=session_counts[index],
                    max_ops=0,  # scripted mode: the schedule is the budget
                    replica_id=node_id,
                    history=history,
                    session_base=base,
                    schedule=shard_schedules[index],
                )
            )
            base += session_counts[index]
    else:
        scripted = ScriptedOps(scripts, seed=shard_seed)
        client_id = 0
        for node_id in cluster.node_ids:
            for _ in range(spec.clients_per_replica):
                clients.append(
                    ClosedLoopClient(
                        client_id=client_id,
                        cluster=cluster,
                        workload=scripted,
                        max_ops=scripted.ops_for(client_id),
                        replica_id=node_id,
                        history=history,
                    )
                )
                client_id += 1

    duration = run_clients(cluster, clients, max_time=spec.max_sim_time)
    return _reduce_run(sub_spec, cluster, clients, duration, history)


def merge_shard_results(
    spec: ExperimentSpec, parts: Sequence[ExperimentResult]
) -> ExperimentResult:
    """Deterministically merge per-shard results into one ExperimentResult.

    Shards run concurrently on dedicated resources, so their simulated
    timelines overlap from time zero: throughput and latency summaries are
    computed over the union of the per-operation records, the duration is
    the slowest shard's, and protocol counters sum. The merge depends only
    on the parts (in shard order), never on which process produced them.
    """
    results: List[OperationResult] = []
    for part in parts:
        results.extend(part.results)
    history: Optional[History] = None
    if spec.record_history:
        history = History()
        for part in parts:
            if part.history is not None:
                history.absorb(part.history)
    stats: Dict[str, int] = {}
    for part in parts:
        for name, value in part.cluster_stats.items():
            stats[name] = stats.get(name, 0) + value
    return _summarize(
        spec,
        results,
        max((part.duration for part in parts), default=0.0),
        history,
        stats,
    )
