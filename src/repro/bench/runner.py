"""Parallel experiment runner and ``BENCH_*.json`` artifact pipeline.

Every paper figure is a grid of independent experiments (protocol x write
ratio x skew x replication degree). The cells share nothing — each builds
its own cluster, workload and RNG streams from an
:class:`~repro.bench.harness.ExperimentSpec` — so they are embarrassingly
parallel. This module fans a grid out across ``ProcessPoolExecutor``
workers and merges the per-cell :class:`~repro.bench.harness.ExperimentResult`
records back in submission order, which makes the output **bit-for-bit
identical for any worker count** (including fully serial execution).

Determinism is anchored by per-cell seeds: :func:`derive_cell_seed` hashes
the cell's spec (everything except its ``seed`` field) together with the
figure's root seed, so every cell gets a stable, collision-resistant seed
that does not depend on grid order, worker scheduling or Python hash
randomization.

Command-line interface::

    PYTHONPATH=src python -m repro.bench.runner --figure 5 --scale smoke --jobs 8

runs Figures 5a and 5b at smoke scale on 8 worker processes, prints the
text tables via :mod:`repro.analysis.report`, and writes ``BENCH_fig5.json``
into the output directory. ``--figure all`` reproduces the whole evaluation.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult, ExperimentSpec, Scale, run_experiment
from repro.errors import BenchmarkError

#: Named run-size presets accepted by ``--scale`` and ``REPRO_BENCH_SCALE``.
SCALE_PRESETS: Dict[str, Callable[[], Scale]] = {
    "smoke": Scale.smoke,
    "default": Scale.default,
    "thorough": Scale.thorough,
    # A compact preset tuned so the full figure suite stays fast while still
    # saturating the protocol bottlenecks the figures are about.
    "bench": lambda: Scale("bench", num_keys=2_000, clients_per_replica=12, ops_per_client=120),
}


def resolve_scale(name: str) -> Scale:
    """Look up a named scale preset (case-insensitive).

    Raises:
        BenchmarkError: if the name is unknown.
    """
    factory = SCALE_PRESETS.get(name.lower())
    if factory is None:
        raise BenchmarkError(
            f"unknown scale {name!r}; options: {sorted(SCALE_PRESETS)}"
        )
    return factory()


def default_jobs() -> int:
    """Worker count used when ``jobs`` is unspecified: all cores."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------- seeding
#: Spec fields excluded from the cell identity while they hold these default
#: values. This lets new grid axes (e.g. ``shards``) be added to
#: :class:`ExperimentSpec` without perturbing the derived seeds — and hence
#: the committed ``BENCH_*.json`` baselines — of every pre-existing cell.
_IDENTITY_NEUTRAL_DEFAULTS: Dict[str, Any] = {
    "shards": 1,
    "shard_mode": "coupled",
    "txn_fraction": 0.0,
    "txn_keys": 2,
    "txn_cross_shard": 0.0,
    "faults": (),
    "run_membership": False,
    "migrations": (),
    "membership": None,
    "allow_incomplete": False,
    "sessions": 0,
    "session_think_time": 0.0,
}

_MISSING = object()


def derive_cell_seed(spec: ExperimentSpec, root_seed: int) -> int:
    """A deterministic per-cell seed from ``(spec, root_seed)``.

    The spec's own ``seed`` field is excluded so the derivation is a pure
    function of the cell's identity (protocol, workload, sizes, configs) and
    the figure's root seed; fields listed in ``_IDENTITY_NEUTRAL_DEFAULTS``
    are excluded while they hold their default value. SHA-256 keeps the
    result stable across processes and Python hash randomization.
    """
    identity = sorted(
        (name, repr(value))
        for name, value in vars(spec).items()
        if name != "seed" and _IDENTITY_NEUTRAL_DEFAULTS.get(name, _MISSING) != value
    )
    payload = repr((identity, root_seed)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1) + 1


# ------------------------------------------------------------ grid running
def parallel_map(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Map ``worker`` over ``tasks`` across worker processes, keeping order.

    The one fan-out primitive shared by the figure grids (:func:`run_specs`)
    and the fault-schedule fuzzer's campaign loop (:mod:`repro.fuzz`): task
    submission order equals result order regardless of worker scheduling,
    ``jobs <= 1`` (or a single task) short-circuits to a serial in-process
    loop with no executor and no pickling, and ``worker``/``tasks`` must be
    picklable module-level callables/values when parallel.

    Args:
        worker: Module-level callable applied to each task.
        tasks: The task list; fully materialized before dispatch.
        jobs: Worker processes. ``None`` uses every core.

    Returns:
        ``[worker(task) for task in tasks]``, computed in parallel.
    """
    tasks = list(tasks)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(worker, tasks))


def _execute_spec(task: Tuple[ExperimentSpec, bool]) -> ExperimentResult:
    """Worker entry point: run one cell, optionally stripping bulky fields.

    Raw per-operation results (and any recorded history) are dropped before
    the result crosses the process boundary unless the caller asked for
    them; the reduced summaries are computed inside the worker either way,
    so stripping never changes the numbers.
    """
    spec, keep_results = task
    result = run_experiment(spec)
    if not keep_results:
        result.results = []
        result.history = None
    return result


def _execute_unit(unit: Tuple[str, ExperimentSpec, Any]) -> ExperimentResult:
    """Worker entry point for one schedulable unit: a whole cell or one shard.

    Parallel-sharded cells are split into per-shard units so independent
    shards occupy different worker processes; their raw per-operation
    results are kept (the parent needs them to merge latency summaries
    exactly as a serial run would).
    """
    kind, spec, arg = unit
    if kind == "shard":
        from repro.bench.harness import run_shard_experiment

        return run_shard_experiment(spec, arg)
    return _execute_spec((spec, arg))


def run_specs(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    keep_results: bool = False,
) -> List[ExperimentResult]:
    """Run experiments, in parallel when ``jobs`` allows, preserving order.

    Cells with ``shards > 1`` and ``shard_mode == "parallel"`` are expanded
    into one unit per shard, so fully independent shards run in separate
    worker processes; the per-shard results are merged (in shard order)
    into one result per cell. The merge is the same function a serial
    :func:`~repro.bench.harness.run_experiment` applies, so the output is
    identical for any worker count.

    Args:
        specs: The experiment grid, one spec per cell.
        jobs: Worker processes. ``None`` uses every core; ``0``/``1`` runs
            serially in-process (no executor, no pickling).
        keep_results: Keep raw per-operation results on each returned
            :class:`ExperimentResult` (costs IPC bandwidth when parallel).

    Returns:
        One :class:`ExperimentResult` per spec, in input order regardless of
        worker scheduling — serial and parallel runs produce identical
        output for identical specs.
    """
    from repro.bench.harness import merge_shard_results

    if jobs is None:
        jobs = default_jobs()
    units: List[Tuple[str, ExperimentSpec, Any]] = []
    layout: List[Tuple[str, ExperimentSpec, List[int]]] = []
    for spec in specs:
        if spec.shards > 1 and spec.shard_mode == "parallel":
            indices = list(range(len(units), len(units) + spec.shards))
            units.extend(("shard", spec, shard) for shard in range(spec.shards))
            layout.append(("shards", spec, indices))
        else:
            layout.append(("whole", spec, [len(units)]))
            units.append(("whole", spec, keep_results))
    outputs = parallel_map(_execute_unit, units, jobs=jobs)
    results: List[ExperimentResult] = []
    for kind, spec, indices in layout:
        if kind == "shards":
            merged = merge_shard_results(spec, [outputs[i] for i in indices])
            if not keep_results:
                merged.results = []
                merged.history = None
            results.append(merged)
        else:
            results.append(outputs[indices[0]])
    return results


#: Extra :class:`ExperimentSpec` field overrides applied to every grid cell
#: by :func:`run_cells` — the hook behind the CLI's ``--shards`` /
#: ``--shard-mode`` grid axes. Applied *before* per-cell seed derivation, so
#: overridden grids get their own deterministic seeds. Empty by default.
GRID_SPEC_OVERRIDES: Dict[str, Any] = {}


def run_cells(
    cells: Sequence[Tuple[Hashable, ExperimentSpec]],
    root_seed: int,
    jobs: Optional[int] = None,
    keep_results: bool = False,
    spec_overrides: Optional[Dict[str, Any]] = None,
) -> Dict[Hashable, ExperimentResult]:
    """Run a keyed experiment grid with derived per-cell seeds.

    Args:
        cells: ``(key, spec)`` pairs; keys must be unique.
        root_seed: Figure-level seed mixed into every cell's derived seed.
        jobs: Worker processes (see :func:`run_specs`).
        keep_results: Keep raw per-operation results.
        spec_overrides: Field overrides applied to every cell's spec
            (defaults to the module-level :data:`GRID_SPEC_OVERRIDES`).

    Returns:
        Mapping from each cell key to its result.
    """
    keys = [key for key, _ in cells]
    if len(set(keys)) != len(keys):
        raise BenchmarkError("grid cell keys must be unique")
    overrides = GRID_SPEC_OVERRIDES if spec_overrides is None else spec_overrides
    if overrides:
        # A figure that sweeps an axis itself (any cell holds the field at a
        # non-default value — e.g. figure_shard_scale's shard axis) owns that
        # axis: overriding it would relabel the sweep, so the override is
        # dropped for that grid.
        effective = dict(overrides)
        for name in list(effective):
            default = _IDENTITY_NEUTRAL_DEFAULTS.get(name, _MISSING)
            if default is not _MISSING and any(
                getattr(spec, name) != default for _, spec in cells
            ):
                del effective[name]
        if effective:
            cells = [(key, replace(spec, **effective)) for key, spec in cells]
    # shard_mode is meaningless without shards: normalize so e.g. a global
    # `--shard-mode parallel` without `--shards` stays a true no-op — same
    # cell identity, same derived seeds, same artifacts.
    cells = [
        (
            key,
            replace(spec, shard_mode="coupled")
            if spec.shards == 1 and spec.shard_mode != "coupled"
            else spec,
        )
        for key, spec in cells
    ]
    seeded = [
        replace(spec, seed=derive_cell_seed(spec, root_seed)) for _, spec in cells
    ]
    results = run_specs(seeded, jobs=jobs, keep_results=keep_results)
    return dict(zip(keys, results))


# ---------------------------------------------------------- JSON artifacts
def _jsonable(value: Any) -> Any:
    """Convert figure payloads (dataclasses, tuples, nested dicts) to JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {_json_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _json_key(key: Any) -> str:
    """Flatten grid keys (often tuples) into stable strings."""
    if isinstance(key, tuple):
        return ",".join(str(part) for part in key)
    return str(key)


def figure_to_dict(result: "FigureResult") -> Dict[str, Any]:  # noqa: F821
    """Serialize a :class:`~repro.bench.experiments.FigureResult` to JSON."""
    return {
        "figure": result.figure,
        "headers": list(result.headers),
        "rows": _jsonable(result.rows),
        "data": _jsonable(result.data),
        "notes": result.notes,
    }


def write_artifact(path: str, payload: Dict[str, Any]) -> None:
    """Write a ``BENCH_*.json`` artifact with deterministic formatting."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# --------------------------------------------------------- baseline diffing
#: Per-metric relative tolerances for ``--diff-baseline``, matched by the
#: first rule whose key is a substring of the metric's path (checked in
#: order). Artifacts are deterministic for a fixed code version, so a rerun
#: of unchanged code always diffs clean; the tolerances define how much a
#: *code change* may legitimately move each metric before CI calls it a
#: regression. Latency percentiles wobble more than means under protocol
#: tweaks; counter-like metrics (message counts, aborts) are the noisiest.
DEFAULT_DIFF_TOLERANCES: "List[Tuple[str, float]]" = [
    ("messages_sent", 0.25),
    ("rmws_aborted", 0.50),
    ("reconfiguration_times", 0.25),
    ("p99", 0.35),
    ("_us", 0.25),
    ("series", 0.50),
    ("ratio", 0.25),
    ("", 0.15),  # default: throughput-like metrics
]

#: Payload keys that are derived presentation (skipped when diffing).
_DIFF_SKIP_KEYS = frozenset({"rows", "notes"})


@dataclasses.dataclass
class DiffEntry:
    """One compared metric from a baseline diff."""

    figure: str
    path: str
    baseline: Any
    fresh: Any
    drift: float
    tolerance: float
    ok: bool


def _tolerance_for(path: str, tolerances: Sequence[Tuple[str, float]]) -> float:
    for key, tol in tolerances:
        if key in path:
            return tol
    return 0.0


def _relative_drift(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


def diff_payloads(
    figure: str,
    baseline: Any,
    fresh: Any,
    tolerances: Sequence[Tuple[str, float]] = (),
    path: str = "",
) -> List[DiffEntry]:
    """Compare two artifact payload fragments, returning one entry per leaf.

    Numeric leaves compare with the relative tolerance selected by the
    metric's path; all other leaves (strings, booleans, None) and the tree
    structure itself must match exactly. ``rows`` and ``notes`` are skipped
    — they are text renderings of the ``data`` numbers.
    """
    tolerances = tolerances or DEFAULT_DIFF_TOLERANCES
    entries: List[DiffEntry] = []

    def mismatch(p: str, a: Any, b: Any) -> None:
        entries.append(DiffEntry(figure, p, a, b, float("inf"), 0.0, False))

    def walk(a: Any, b: Any, p: str) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            keys_a = set(a) - _DIFF_SKIP_KEYS
            keys_b = set(b) - _DIFF_SKIP_KEYS
            for missing in sorted(keys_a ^ keys_b):
                mismatch(f"{p}/{missing}", a.get(missing, "<absent>"), b.get(missing, "<absent>"))
            for key in sorted(keys_a & keys_b):
                walk(a[key], b[key], f"{p}/{key}")
            return
        if isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                mismatch(f"{p}/len", len(a), len(b))
                return
            for index, (item_a, item_b) in enumerate(zip(a, b)):
                walk(item_a, item_b, f"{p}[{index}]")
            return
        numeric_a = isinstance(a, (int, float)) and not isinstance(a, bool)
        numeric_b = isinstance(b, (int, float)) and not isinstance(b, bool)
        if numeric_a and numeric_b:
            drift = _relative_drift(float(a), float(b))
            tolerance = _tolerance_for(p, tolerances)
            entries.append(DiffEntry(figure, p, a, b, drift, tolerance, drift <= tolerance))
            return
        if a != b:
            mismatch(p, a, b)

    walk(baseline, fresh, path)
    return entries


def parse_tolerance_overrides(specs: Sequence[str]) -> List[Tuple[str, float]]:
    """Parse repeated ``KEY=VALUE`` tolerance overrides (prepended to defaults)."""
    rules: List[Tuple[str, float]] = []
    for item in specs:
        key, sep, value = item.partition("=")
        if not sep:
            raise BenchmarkError(f"tolerance override {item!r} is not KEY=VALUE")
        try:
            rules.append((key, float(value)))
        except ValueError as exc:
            raise BenchmarkError(f"invalid tolerance value in {item!r}") from exc
    return rules + DEFAULT_DIFF_TOLERANCES


def diff_against_baseline(
    figure: str,
    fresh_payload: Dict[str, Any],
    baseline_dir: str,
    tolerances: Sequence[Tuple[str, float]] = (),
) -> Tuple[List[DiffEntry], List[str]]:
    """Diff a freshly produced figure payload against a committed baseline.

    Returns:
        ``(entries, errors)`` — per-metric comparisons plus fatal problems
        (missing baseline file, scale/seed mismatch).
    """
    errors: List[str] = []
    path = os.path.join(baseline_dir, artifact_name(figure))
    if not os.path.exists(path):
        return [], [f"no baseline artifact {path}"]
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    for field_name in ("figure", "scale", "seed"):
        if baseline.get(field_name) != fresh_payload.get(field_name):
            errors.append(
                f"{figure}: baseline {field_name}={baseline.get(field_name)!r} does not match "
                f"fresh run {field_name}={fresh_payload.get(field_name)!r}"
            )
    if errors:
        return [], errors
    # Round-trip the fresh payload through JSON so both sides have identical
    # type/shape treatment (tuples become lists, keys become strings).
    fresh = json.loads(json.dumps(_jsonable(fresh_payload), sort_keys=True))
    return diff_payloads(figure, baseline, fresh, tolerances), errors


def write_diff_report(path: str, entries: List[DiffEntry], errors: List[str]) -> None:
    """Write the machine-readable diff report next to the artifacts.

    Structural mismatches carry ``drift=inf`` internally; the report maps
    them to ``null`` so the JSON stays strictly parseable (the bare
    ``Infinity`` token json.dump would emit is not valid JSON).
    """

    def finite(value: float) -> Optional[float]:
        return value if value != float("inf") else None

    failing = [e for e in entries if not e.ok]
    finite_drifts = [e.drift for e in entries if e.drift != float("inf")]
    payload = {
        "ok": not failing and not errors,
        "compared": len(entries),
        "failures": [
            {**dataclasses.asdict(e), "drift": finite(e.drift)} for e in failing
        ],
        "errors": errors,
        "structural_mismatches": sum(1 for e in entries if e.drift == float("inf")),
        "worst_drift": max(finite_drifts, default=0.0),
    }
    write_artifact(path, _jsonable(payload))


# ------------------------------------------------------------- figure CLI
def _figure_functions() -> Dict[str, List[Callable[..., Any]]]:
    """Figure key -> list of figure functions (imported lazily: the
    experiments module itself imports this runner)."""
    from repro.bench import experiments as exp

    def gridded(func: Callable[..., Any]) -> Callable[..., Any]:
        def call(scale: Scale, seed: int, jobs: Optional[int]) -> Any:
            return func(scale=scale, seed=seed, jobs=jobs)

        call.__name__ = func.__name__
        call.uses_scale = True
        return call

    def fixed(func: Callable[..., Any], **forwarded: Any) -> Callable[..., Any]:
        """For figures with a bespoke, scale-independent setup (9, migrate,
        Table 2): ``scale``/``jobs`` do not apply; ``forwarded`` names the
        arguments that do (``seed``, and ``shards`` for figures whose
        bespoke cluster honours the CLI's ``--shards``/``--shard-mode``
        overrides)."""

        def call(scale: Scale, seed: int, jobs: Optional[int]) -> Any:
            kwargs = {"seed": seed} if "seed" in forwarded else {}
            if forwarded.get("shards"):
                # Forward --shards when the figure can honour it; below the
                # figure's minimum (e.g. --shards 1 with migrate in an
                # --figure all sweep) the bespoke default applies — an
                # *explicitly selected* migrate with --shards 1 is rejected
                # up front by the CLI instead.
                shards = GRID_SPEC_OVERRIDES.get("shards")
                if shards is not None and shards >= forwarded.get("min_shards", 1):
                    kwargs["shards"] = shards
                shard_mode = GRID_SPEC_OVERRIDES.get("shard_mode")
                if shard_mode is not None:
                    kwargs["shard_mode"] = shard_mode
            return func(**kwargs)

        call.__name__ = func.__name__
        call.uses_scale = False
        return call

    return {
        "5": [gridded(exp.figure_5a_throughput_uniform), gridded(exp.figure_5b_throughput_skew)],
        "6": [
            gridded(exp.figure_6a_latency_vs_throughput),
            gridded(exp.figure_6b_latency_uniform),
            gridded(exp.figure_6c_latency_skew),
        ],
        "7": [gridded(exp.figure_7_scalability)],
        "8": [gridded(exp.figure_8_derecho)],
        "9": [fixed(exp.figure_9_failure, seed=True, shards=True)],
        "migrate": [fixed(exp.figure_migrate, seed=True, shards=True, min_shards=2)],
        "flashcrowd": [fixed(exp.figure_flashcrowd, seed=True, shards=True, min_shards=2)],
        "table2": [fixed(exp.table_2_features)],
        "ablations": [gridded(exp.ablation_optimizations), gridded(exp.ablation_wings_batching)],
        "openloop": [gridded(exp.figure_open_loop)],
        "rmw": [gridded(exp.figure_rmw_mix)],
        "shardscale": [gridded(exp.figure_shard_scale)],
        "shardskew": [gridded(exp.figure_shard_scale_skew)],
        "txn": [gridded(exp.figure_txn)],
        "txngrid": [gridded(exp.figure_txn_grid)],
        "usersweep": [gridded(exp.figure_usersweep)],
    }


def artifact_name(figure: str) -> str:
    """The ``BENCH_*.json`` file name for a figure key."""
    if figure[0].isdigit():
        return f"BENCH_fig{figure}.json"
    return f"BENCH_{figure}.json"


def run_figure(
    figure: str,
    scale: Scale,
    seed: int = 1,
    jobs: Optional[int] = None,
    output_dir: Optional[str] = None,
    print_tables: bool = True,
) -> Dict[str, Any]:
    """Run one figure end to end: experiments, tables, JSON artifact.

    Args:
        figure: Figure key (``"5"``, ``"6"``, ..., ``"table2"``,
            ``"ablations"``).
        scale: Run-size preset for the underlying experiments.
        seed: Root seed for per-cell derivation.
        jobs: Worker processes for the grid.
        output_dir: Where to write the artifact; ``None`` skips writing.
        print_tables: Print each figure's text table to stdout.

    Returns:
        The artifact payload (also written to disk when requested).
    """
    functions = _figure_functions().get(figure)
    if functions is None:
        raise BenchmarkError(
            f"unknown figure {figure!r}; options: {sorted(_figure_functions())}"
        )
    # Record the scale only when it was actually applied: Figure 9 and
    # Table 2 have bespoke, scale-independent setups, and stamping an
    # unapplied scale into their artifacts would defeat artifact diffing.
    uses_scale = any(getattr(func, "uses_scale", True) for func in functions)
    payload: Dict[str, Any] = {
        "figure": figure,
        "scale": scale.name if uses_scale else None,
        "seed": seed,
        "results": [],
    }
    if GRID_SPEC_OVERRIDES:
        # Overridden grids are a different measurement; stamping the
        # overrides prevents their artifacts from diffing clean against
        # (or silently replacing) the default baselines.
        payload["spec_overrides"] = dict(GRID_SPEC_OVERRIDES)
    for func in functions:
        result = func(scale, seed, jobs)
        if print_tables:
            print(result.table())
            if result.notes:
                print(f"  note: {result.notes}")
            print()
        payload["results"].append(figure_to_dict(result))
    if output_dir is not None:
        path = os.path.join(output_dir, artifact_name(figure))
        write_artifact(path, payload)
        if print_tables:
            print(f"wrote {path}")
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench.runner``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner",
        description="Reproduce paper figures on parallel workers and emit BENCH_*.json artifacts.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        dest="figures",
        metavar="FIG",
        help="figure to run: 5, 6, 7, 8, 9, migrate, flashcrowd, table2, "
        "ablations, openloop, rmw, shardscale, shardskew, txn, txngrid, "
        "usersweep, or all (repeatable; default: all)",
    )
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "bench"),
        help="run-size preset: smoke, bench, default, thorough "
        "(default: $REPRO_BENCH_SCALE or 'bench')",
    )
    parser.add_argument("--seed", type=int, default=1, help="root seed (default: 1)")
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="override the key-range shard count of every grid cell; the "
        "bespoke figures 9, migrate and flashcrowd run their scenario on "
        "S shards (table2 is unaffected)",
    )
    parser.add_argument(
        "--shard-mode",
        choices=["coupled", "parallel"],
        default=None,
        help="how shards execute: 'coupled' shares node CPU/NIC inside one "
        "simulation, 'parallel' runs independent shards across worker "
        "processes (default: coupled)",
    )
    jobs_env = os.environ.get("REPRO_BENCH_JOBS")
    parser.add_argument(
        "--jobs",
        type=int,
        default=int(jobs_env) if jobs_env else None,
        help="worker processes (default: $REPRO_BENCH_JOBS or all cores; 1 = serial)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for BENCH_*.json artifacts (default: current directory)",
    )
    parser.add_argument(
        "--no-artifacts", action="store_true", help="skip writing BENCH_*.json files"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress text tables")
    parser.add_argument(
        "--diff-baseline",
        metavar="DIR",
        help="compare the fresh run against committed BENCH_*.json baselines in "
        "DIR with per-metric tolerances; exit non-zero on drift",
    )
    parser.add_argument(
        "--diff-tolerance",
        action="append",
        default=[],
        metavar="KEY=REL",
        help="override a diff tolerance (path-substring = relative tolerance; "
        "repeatable, e.g. --diff-tolerance throughput=0.05)",
    )
    args = parser.parse_args(argv)

    known = sorted(_figure_functions())
    figures = args.figures or ["all"]
    if "all" in figures:
        figures = known
    unknown = [f for f in figures if f not in known]
    if unknown:
        parser.error(f"unknown figure(s) {unknown}; options: {known + ['all']}")

    try:
        scale = resolve_scale(args.scale)
    except BenchmarkError as exc:
        parser.error(str(exc))

    try:
        tolerances = parse_tolerance_overrides(args.diff_tolerance)
    except BenchmarkError as exc:
        parser.error(str(exc))

    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.shards == 1 and args.figures:
        # Only when selected by name: a default/--figure all sweep with
        # --shards 1 runs the bespoke multi-shard figures at their own
        # default shard count instead (grid cells all run unsharded).
        sharded_only = [f for f in ("migrate", "flashcrowd") if f in args.figures]
        if sharded_only:
            parser.error(
                f"--figure {'/'.join(sharded_only)} needs at least two shards "
                "to move a key range between; use --shards >= 2 (default: 4)"
            )
    if args.shard_mode == "parallel" and (args.shards or 1) > 1:
        # Fail before any figure burns compute, with a clear message
        # instead of a mid-run traceback.
        if "openloop" in figures:
            # The open-loop sweep's Poisson sessions cannot be split across
            # independent shard simulations (closed-loop replay only).
            parser.error(
                "--shard-mode parallel with --shards > 1 does not support the "
                "open-loop figure (closed-loop clients only); use --shard-mode "
                "coupled or select other figures"
            )
        membership_figures = [f for f in figures if f in ("9", "migrate", "flashcrowd")]
        if membership_figures:
            # Membership/view-change scenarios need one shared simulation
            # that the RM service can reconfigure.
            parser.error(
                f"--shard-mode parallel cannot run the membership/view-change "
                f"figure(s) {membership_figures}: parallel execution runs each "
                "shard as an independent simulation, so there is no shared "
                "cluster for the RM service to reconfigure; use --shard-mode "
                "coupled (the default)"
            )
    overrides: Dict[str, Any] = {}
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.shard_mode is not None and overrides.get("shards", 1) > 1:
        # shard_mode without shards is a no-op; dropping it here keeps the
        # run (and its artifact payload) identical to a plain run.
        overrides["shard_mode"] = args.shard_mode
    previous_overrides = dict(GRID_SPEC_OVERRIDES)
    GRID_SPEC_OVERRIDES.clear()
    GRID_SPEC_OVERRIDES.update(overrides)
    try:
        return _run_figures(args, figures, scale, tolerances)
    finally:
        # In-process callers (tests, notebooks) must not inherit the CLI's
        # overrides as ambient state for later run_cells() calls.
        GRID_SPEC_OVERRIDES.clear()
        GRID_SPEC_OVERRIDES.update(previous_overrides)


def _run_figures(
    args: argparse.Namespace,
    figures: Sequence[str],
    scale: Scale,
    tolerances: Sequence[Tuple[str, float]],
) -> int:
    """Run the selected figures and (optionally) diff against baselines."""
    output_dir = None if args.no_artifacts else args.output_dir
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
    entries: List[DiffEntry] = []
    errors: List[str] = []
    for figure in figures:
        payload = run_figure(
            figure,
            scale,
            seed=args.seed,
            jobs=args.jobs,
            output_dir=output_dir,
            print_tables=not args.quiet,
        )
        if args.diff_baseline:
            figure_entries, figure_errors = diff_against_baseline(
                figure, payload, args.diff_baseline, tolerances
            )
            entries.extend(figure_entries)
            errors.extend(figure_errors)

    if not args.diff_baseline:
        return 0

    failing = [e for e in entries if not e.ok]
    report_path = None
    if output_dir is not None:
        # --no-artifacts promises no files; the report is itself an artifact.
        report_path = os.path.join(output_dir, "BENCH_DIFF.json")
        write_diff_report(report_path, entries, errors)
    print(
        f"baseline diff vs {args.diff_baseline}: {len(entries)} metrics compared, "
        f"{len(failing)} out of tolerance, {len(errors)} errors"
        + (f" -> {report_path}" if report_path else "")
    )
    for error in errors:
        print(f"  ERROR {error}")
    for entry in failing[:20]:
        print(
            f"  DRIFT {entry.figure}{entry.path}: baseline={entry.baseline!r} "
            f"fresh={entry.fresh!r} drift={entry.drift:.3f} tol={entry.tolerance:.3f}"
        )
    if len(failing) > 20:
        where = f" (see {report_path})" if report_path else ""
        print(f"  ... and {len(failing) - 20} more{where}")
    return 1 if failing or errors else 0


if __name__ == "__main__":
    # Delegate to the canonically imported module so only one copy of this
    # module's globals (notably GRID_SPEC_OVERRIDES) is ever live — under
    # ``python -m`` this file executes as ``__main__`` while the figure
    # functions import ``repro.bench.runner``.
    from repro.bench.runner import main as _main

    sys.exit(_main())
