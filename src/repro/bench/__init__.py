"""Benchmark harness.

* :mod:`repro.bench.harness` — the experiment runner: builds a cluster from
  an :class:`ExperimentSpec`, drives it with closed-loop clients, and
  reduces the results to throughput and latency summaries.
* :mod:`repro.bench.experiments` — one function per paper figure/table
  (5a, 5b, 6a, 6b, 6c, 7, 8, 9, Table 2) plus the ablation studies listed in
  DESIGN.md. The ``benchmarks/`` pytest suite is a thin wrapper around these
  functions; they can also be called directly from scripts or notebooks.
* :mod:`repro.bench.runner` — the parallel grid runner and ``BENCH_*.json``
  artifact pipeline (``python -m repro.bench.runner --figure 5 --scale
  smoke --jobs 8``).
* :mod:`repro.bench.microbench` — events/sec microbenchmarks for the
  simulation engine (``python -m repro.bench.microbench``).
"""

# NOTE: repro.bench.runner is deliberately NOT imported here: it is runnable
# as ``python -m repro.bench.runner`` and importing it from the package
# __init__ would trigger the double-import RuntimeWarning for that entry
# point. Import it explicitly (``from repro.bench.runner import run_cells``).

from repro.bench.harness import ExperimentResult, ExperimentSpec, Scale, run_experiment
from repro.bench.experiments import (
    ablation_optimizations,
    ablation_wings_batching,
    figure_5a_throughput_uniform,
    figure_5b_throughput_skew,
    figure_6a_latency_vs_throughput,
    figure_6b_latency_uniform,
    figure_6c_latency_skew,
    figure_7_scalability,
    figure_8_derecho,
    figure_9_failure,
    table_2_features,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "Scale",
    "ablation_optimizations",
    "ablation_wings_batching",
    "figure_5a_throughput_uniform",
    "figure_5b_throughput_skew",
    "figure_6a_latency_vs_throughput",
    "figure_6b_latency_uniform",
    "figure_6c_latency_skew",
    "figure_7_scalability",
    "figure_8_derecho",
    "figure_9_failure",
    "run_experiment",
    "table_2_features",
]
