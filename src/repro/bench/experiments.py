"""Experiment definitions: one function per paper figure/table.

Every function returns a :class:`FigureResult` whose rows mirror the series
the paper plots, plus a ``data`` mapping for programmatic access (used by the
benchmark assertions). The functions are deterministic for a given seed and
scale preset.

The absolute numbers differ from the paper (the substrate is a Python
discrete-event simulator, not a 56 Gb InfiniBand testbed); the assertions in
``benchmarks/`` check the *shape*: who wins, roughly by how much, and where
the qualitative effects (leader bottleneck, tail hotspot, unavailability
window) appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.stats import throughput_timeseries
from repro.bench.harness import ExperimentResult, ExperimentSpec, Scale, build_workload
from repro.cluster.client import ClosedLoopClient
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.rebalance_plan import default_target, owner_at
from repro.core.config import HermesConfig
from repro.errors import BenchmarkError, ConfigurationError
from repro.membership.detector import FailureDetectorConfig
from repro.membership.service import MembershipConfig, PlannedMigration
from repro.membership.view import ShardMigration
from repro.protocols.base import ReplicaConfig, protocol_registry
from repro.verification.history import History
from repro.workloads.distributions import UniformKeys
from repro.workloads.generator import WorkloadMix

def run_cells(*args, **kwargs):
    """Proxy to :func:`repro.bench.runner.run_cells`, imported lazily so that
    ``python -m repro.bench.runner`` does not double-import its own module
    through this one."""
    from repro.bench.runner import run_cells as _run_cells

    return _run_cells(*args, **kwargs)


#: Write ratios evaluated by Figures 5 and 6 of the paper.
PAPER_WRITE_RATIOS: Tuple[float, ...] = (0.01, 0.05, 0.20, 0.50, 0.75, 1.00)

#: The three protocols compared in the main throughput/latency figures.
MAIN_PROTOCOLS: Tuple[str, ...] = ("hermes", "craq", "zab")

#: Legacy fixed offered-load ladder (operations per simulated second) for
#: the open-loop sweep. The default sweep now auto-calibrates its ladder
#: from a per-protocol capacity probe (see :func:`figure_open_loop`); this
#: constant remains for explicitly pinning absolute load points.
OPEN_LOOP_LOADS: Tuple[float, ...] = (1.0e6, 2.0e6, 4.0e6, 8.0e6)

#: Auto-calibrated ladder rungs as fractions of each protocol's measured
#: closed-loop capacity: two points below saturation, one at it, one past
#: it — the hockey stick is guaranteed to sit inside the sweep regardless
#: of protocol speed or scale preset.
OPEN_LOOP_LADDER_FRACTIONS: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0)

#: Auto-calibrated loads are rounded to this granularity (ops/s) so the
#: ladder stays readable and stable against sub-percent capacity wobble.
_LADDER_ROUNDING = 10_000.0

#: Workload presets swept by the RMW-mix figure (see repro.workloads.presets).
RMW_MIX_PRESETS: Tuple[str, ...] = (
    "read-heavy",
    "update-heavy",
    "rmw-heavy",
    "skewed-rmw-heavy",
)

#: Shard counts swept by the shard-scaling figure.
SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Cross-shard probabilities swept by the transaction figure.
TXN_CROSS_SHARD_POINTS: Tuple[float, ...] = (0.0, 0.5, 1.0)

#: Fraction of client requests that are transactions in the txn figure.
TXN_FRACTION: float = 0.25

#: Keys per transaction in the txn figure. Three keys give every shard
#: count a clearly monotone abort-rate response to the cross-shard
#: probability (more locks per transaction, wider cross-shard spans).
TXN_KEYS: int = 3

#: ``txn_fraction`` axis of the transaction-grid figure.
TXN_FRACTION_POINTS: Tuple[float, ...] = (0.1, 0.25, 0.5)

#: ``txn_keys`` axis of the transaction-grid figure.
TXN_KEYS_POINTS: Tuple[int, ...] = (2, 3, 4)

#: Shard count held fixed by the transaction-grid figure (mid-sweep point
#: of :data:`SHARD_COUNTS`, large enough that cross-shard 2PC dominates).
TXN_GRID_SHARDS: int = 4


@dataclass
class FigureResult:
    """A reproduced table or figure.

    Attributes:
        figure: Identifier, e.g. ``"Figure 5a"``.
        headers: Column headers of the rendered table.
        rows: Table rows.
        data: Structured access to the numbers, keyed per experiment.
        notes: Free-form notes (what the paper reported, caveats).
    """

    figure: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    data: Dict = field(default_factory=dict)
    notes: str = ""

    def table(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(self.headers, self.rows, title=self.figure)


# ---------------------------------------------------------------------------
# Figures 5a / 5b: throughput vs write ratio
# ---------------------------------------------------------------------------
def _throughput_sweep(
    figure: str,
    zipfian_exponent: Optional[float],
    scale: Scale,
    protocols: Sequence[str] = MAIN_PROTOCOLS,
    write_ratios: Sequence[float] = PAPER_WRITE_RATIOS,
    num_replicas: int = 5,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    result = FigureResult(
        figure=figure,
        headers=["write_ratio", *protocols],
        notes="throughput in completed operations per simulated second",
    )
    cells = [
        (
            (protocol, ratio),
            ExperimentSpec(
                protocol=protocol,
                num_replicas=num_replicas,
                write_ratio=ratio,
                zipfian_exponent=zipfian_exponent,
                label=figure,
            ).with_scale(scale),
        )
        for ratio in write_ratios
        for protocol in protocols
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for ratio in write_ratios:
        row: List[object] = [f"{ratio:.0%}"]
        for protocol in protocols:
            run = runs[(protocol, ratio)]
            result.data[(protocol, ratio)] = run.throughput
            row.append(f"{run.throughput:,.0f}")
        result.rows.append(row)
    return result


def figure_5a_throughput_uniform(
    scale: Optional[Scale] = None, seed: int = 1, jobs: Optional[int] = None
) -> FigureResult:
    """Figure 5a: throughput vs write ratio under uniform traffic (5 nodes)."""
    return _throughput_sweep(
        "Figure 5a (throughput, uniform)", None, scale or Scale.default(), seed=seed, jobs=jobs
    )


def figure_5b_throughput_skew(
    scale: Optional[Scale] = None, seed: int = 1, jobs: Optional[int] = None
) -> FigureResult:
    """Figure 5b: throughput vs write ratio under zipfian(0.99) traffic."""
    return _throughput_sweep(
        "Figure 5b (throughput, zipfian 0.99)", 0.99, scale or Scale.default(), seed=seed, jobs=jobs
    )


# ---------------------------------------------------------------------------
# Figure 6a: latency vs throughput at 5% writes
# ---------------------------------------------------------------------------
def figure_6a_latency_vs_throughput(
    scale: Optional[Scale] = None,
    protocols: Sequence[str] = MAIN_PROTOCOLS,
    client_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 6a: median/99th latency as a function of offered load (5% writes)."""
    scale = scale or Scale.default()
    result = FigureResult(
        figure="Figure 6a (latency vs throughput, 5% writes, uniform)",
        headers=["protocol", "clients/replica", "throughput", "median_us", "p99_us"],
        notes="offered load swept via closed-loop clients per replica",
    )
    cells = [
        (
            (protocol, clients),
            replace(
                ExperimentSpec(
                    protocol=protocol,
                    write_ratio=0.05,
                    label="fig6a",
                ).with_scale(scale),
                clients_per_replica=clients,
            ),
        )
        for protocol in protocols
        for clients in client_counts
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for protocol in protocols:
        for clients in client_counts:
            run = runs[(protocol, clients)]
            result.data[(protocol, clients)] = (
                run.throughput,
                run.overall_latency.median_us,
                run.overall_latency.p99_us,
            )
            result.rows.append(
                [
                    protocol,
                    clients,
                    f"{run.throughput:,.0f}",
                    f"{run.overall_latency.median_us:.1f}",
                    f"{run.overall_latency.p99_us:.1f}",
                ]
            )
    return result


# ---------------------------------------------------------------------------
# Figures 6b / 6c: read & write latency vs write ratio
# ---------------------------------------------------------------------------
def _latency_sweep(
    figure: str,
    zipfian_exponent: Optional[float],
    scale: Scale,
    protocols: Sequence[str] = ("hermes", "craq"),
    write_ratios: Sequence[float] = PAPER_WRITE_RATIOS,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    result = FigureResult(
        figure=figure,
        headers=[
            "protocol",
            "write_ratio",
            "read_median_us",
            "read_p99_us",
            "write_median_us",
            "write_p99_us",
        ],
        notes="latencies measured at a fixed offered load (paper: rCRAQ peak load)",
    )
    cells = [
        (
            (protocol, ratio),
            ExperimentSpec(
                protocol=protocol,
                write_ratio=ratio,
                zipfian_exponent=zipfian_exponent,
                label=figure,
            ).with_scale(scale),
        )
        for protocol in protocols
        for ratio in write_ratios
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for protocol in protocols:
        for ratio in write_ratios:
            run = runs[(protocol, ratio)]
            result.data[(protocol, ratio)] = {
                "read_median_us": run.read_latency.median_us,
                "read_p99_us": run.read_latency.p99_us,
                "write_median_us": run.write_latency.median_us,
                "write_p99_us": run.write_latency.p99_us,
                "throughput": run.throughput,
            }
            result.rows.append(
                [
                    protocol,
                    f"{ratio:.0%}",
                    f"{run.read_latency.median_us:.1f}",
                    f"{run.read_latency.p99_us:.1f}",
                    f"{run.write_latency.median_us:.1f}",
                    f"{run.write_latency.p99_us:.1f}",
                ]
            )
    return result


def figure_6b_latency_uniform(
    scale: Optional[Scale] = None, seed: int = 1, jobs: Optional[int] = None
) -> FigureResult:
    """Figure 6b: read/write median and 99th latency vs write ratio (uniform)."""
    return _latency_sweep(
        "Figure 6b (latency vs write ratio, uniform)",
        None,
        scale or Scale.default(),
        seed=seed,
        jobs=jobs,
    )


def figure_6c_latency_skew(
    scale: Optional[Scale] = None, seed: int = 1, jobs: Optional[int] = None
) -> FigureResult:
    """Figure 6c: read/write median and 99th latency vs write ratio (zipfian)."""
    return _latency_sweep(
        "Figure 6c (latency vs write ratio, zipfian 0.99)",
        0.99,
        scale or Scale.default(),
        seed=seed,
        jobs=jobs,
    )


# ---------------------------------------------------------------------------
# Open-loop (Poisson) offered-load sweep — the open-loop counterpart of
# Figures 5/6: external load is fixed, not completion-driven, so queueing
# delay appears as soon as a protocol saturates.
# ---------------------------------------------------------------------------
def probe_protocol_capacities(
    protocols: Sequence[str],
    write_ratio: float,
    scale: Scale,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Measure each protocol's closed-loop capacity at the given mix.

    One saturating closed-loop cell per protocol — the same simulation a
    Figure 5 grid cell runs — whose steady-state throughput approximates
    the protocol's service capacity. The probe goes through
    :func:`run_cells`, so its seeds derive from the cell identities and the
    figure's root seed: the measured capacities (and hence the calibrated
    ladder) are fully deterministic for a given ``(scale, seed)``.
    """
    cells = [
        (
            protocol,
            ExperimentSpec(
                protocol=protocol,
                write_ratio=write_ratio,
                label="openloop-probe",
            ).with_scale(scale),
        )
        for protocol in protocols
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    return {protocol: runs[protocol].throughput for protocol in protocols}


def calibrated_ladder(capacity: float) -> List[float]:
    """Offered-load points derived from a measured protocol capacity."""
    return [
        max(_LADDER_ROUNDING, round(capacity * fraction / _LADDER_ROUNDING) * _LADDER_ROUNDING)
        for fraction in OPEN_LOOP_LADDER_FRACTIONS
    ]


def figure_open_loop(
    scale: Optional[Scale] = None,
    protocols: Sequence[str] = MAIN_PROTOCOLS,
    offered_loads: Optional[Sequence[float]] = None,
    write_ratio: float = 0.20,
    shard_counts: Sequence[int] = (1, 4),
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Delivered throughput and latency versus Poisson offered load.

    Every session issues requests at a fixed aggregate rate regardless of
    completions (:class:`~repro.cluster.client.OpenLoopClient`). Below
    saturation the delivered throughput tracks the offered load and latency
    stays flat; past a protocol's capacity the delivered curve plateaus and
    latency grows with the backlog — the classic open-loop hockey stick
    that closed-loop sweeps (Figure 6a) understate.

    By default the ladder is **auto-calibrated per protocol**: a quick
    closed-loop capacity probe (:func:`probe_protocol_capacities`) measures
    each protocol's saturation throughput, and the sweep offers 0.5x, 1.0x,
    1.5x and 2.0x of it — so every protocol's curve shows its own knee,
    instead of a fixed absolute ladder that under-drives fast protocols and
    floods slow ones. Pass ``offered_loads`` to pin absolute load points
    (e.g. the legacy :data:`OPEN_LOOP_LOADS`) for all protocols instead.

    ``shard_counts`` adds a key-range sharding axis: the same absolute
    ladder (calibrated against the unsharded protocol) is offered to
    coupled sharded deployments, showing how role spreading moves the
    saturation knee without changing the offered load. ``S = 1`` rows and
    their derived seeds are identical to the pre-axis sweep.
    """
    scale = scale or Scale.default()
    calibrated = offered_loads is None
    if calibrated:
        capacities = probe_protocol_capacities(
            protocols, write_ratio, scale, seed=seed, jobs=jobs
        )
        ladders = {p: calibrated_ladder(capacities[p]) for p in protocols}
    else:
        capacities = {}
        ladders = {p: list(offered_loads) for p in protocols}
    result = FigureResult(
        figure="Open-loop sweep (Poisson arrivals, 20% writes, uniform)",
        headers=[
            "protocol",
            "shards",
            "ladder",
            "offered_ops_s",
            "delivered_ops_s",
            "median_us",
            "p99_us",
        ],
        notes=(
            "offered load split evenly across all sessions; Poisson arrivals; "
            + (
                "ladder auto-calibrated per protocol from a closed-loop capacity probe"
                if calibrated
                else "fixed offered-load ladder"
            )
            + "; sharded rows offer the same absolute ladder to coupled "
            "S-shard deployments"
        ),
    )
    rungs = {
        protocol: list(
            zip(OPEN_LOOP_LADDER_FRACTIONS, ladders[protocol])
            if calibrated
            else [(None, load) for load in ladders[protocol]]
        )
        for protocol in protocols
    }
    sharded_counts = [s for s in shard_counts if s != 1]
    cells = [
        (
            (protocol, index),
            replace(
                ExperimentSpec(
                    protocol=protocol,
                    write_ratio=write_ratio,
                    label="openloop",
                ).with_scale(scale),
                client_model="open",
                offered_load=load,
            ),
        )
        for protocol in protocols
        for index, (_, load) in enumerate(rungs[protocol])
    ]
    cells += [
        (
            (protocol, shards, index),
            replace(
                ExperimentSpec(
                    protocol=protocol,
                    write_ratio=write_ratio,
                    label="openloop",
                ).with_scale(scale),
                client_model="open",
                offered_load=load,
                shards=shards,
            ),
        )
        for protocol in protocols
        for shards in sharded_counts
        for index, (_, load) in enumerate(rungs[protocol])
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for protocol in protocols:
        if calibrated:
            result.data[(protocol, "capacity")] = capacities[protocol]
        for shards in [1, *sharded_counts]:
            for index, (fraction, load) in enumerate(rungs[protocol]):
                run = runs[(protocol, index) if shards == 1 else (protocol, shards, index)]
                rung_label = f"{fraction:.1f}x" if fraction is not None else "fixed"
                # S=1 keeps the pre-axis data keys; sharded rows add S.
                data_key = (
                    (protocol, rung_label, index)
                    if shards == 1
                    else (protocol, shards, rung_label, index)
                )
                result.data[data_key] = {
                    "offered": load,
                    "delivered": run.throughput,
                    "median_us": run.overall_latency.median_us,
                    "p99_us": run.overall_latency.p99_us,
                }
                result.rows.append(
                    [
                        protocol,
                        shards,
                        rung_label,
                        f"{load:,.0f}",
                        f"{run.throughput:,.0f}",
                        f"{run.overall_latency.median_us:.1f}",
                        f"{run.overall_latency.p99_us:.1f}",
                    ]
                )
    return result


# ---------------------------------------------------------------------------
# RMW-heavy workload mixes (paper §3.6: RMWs are conflicting and may abort)
# ---------------------------------------------------------------------------
def figure_rmw_mix(
    scale: Optional[Scale] = None,
    presets: Sequence[str] = RMW_MIX_PRESETS,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Hermes across named workload presets, including 50%-RMW mixes.

    The ``rmw-heavy`` presets exercise the conflicting-update path (CRMW
    rules): aborts appear under key contention, which the skewed variant
    amplifies. A control row runs the rmw-heavy mix with RMW support
    disabled (every RMW degrades to a plain write) to expose the protocol
    cost of RMW semantics at identical load.
    """
    from repro.workloads.presets import preset_spec_kwargs

    scale = scale or Scale.default()
    result = FigureResult(
        figure="RMW-heavy workload mixes (Hermes)",
        headers=["preset", "throughput", "write_median_us", "write_p99_us", "rmws_aborted"],
        notes="rmw-heavy = 50% reads / 50% RMWs; control row degrades RMWs to writes",
    )
    cells = [
        (
            preset,
            replace(
                ExperimentSpec(protocol="hermes", label="rmw-mix").with_scale(scale),
                **preset_spec_kwargs(preset),
            ),
        )
        for preset in presets
    ]
    control = "rmw-heavy (as writes)"
    cells.append(
        (
            control,
            replace(
                ExperimentSpec(
                    protocol="hermes",
                    hermes=HermesConfig(enable_rmw=False),
                    label="rmw-mix-control",
                ).with_scale(scale),
                **preset_spec_kwargs("rmw-heavy"),
            ),
        )
    )
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for label in [*presets, control]:
        run = runs[label]
        result.data[label] = {
            "throughput": run.throughput,
            "write_median_us": run.write_latency.median_us,
            "write_p99_us": run.write_latency.p99_us,
            "rmws_aborted": run.cluster_stats["rmws_aborted"],
        }
        result.rows.append(
            [
                label,
                f"{run.throughput:,.0f}",
                f"{run.write_latency.median_us:.1f}",
                f"{run.write_latency.p99_us:.1f}",
                run.cluster_stats["rmws_aborted"],
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Shard scaling: key-range partitioned protocol groups (HermesKV's
# multi-threaded partitioning, §6, as a scale-out axis)
# ---------------------------------------------------------------------------
def figure_shard_scale(
    scale: Optional[Scale] = None,
    protocols: Sequence[str] = MAIN_PROTOCOLS,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    write_ratio: float = 0.20,
    zipfian_exponent: Optional[float] = None,
    figure_label: Optional[str] = None,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Aggregate throughput as the key space is partitioned into S shards.

    Two execution models are compared at every shard count:

    * **coupled** — all S protocol groups share the same five simulated
      nodes (one :class:`~repro.cluster.sharding.ShardHost` CPU/NIC budget
      per node, like HermesKV threads sharing a machine). Throughput gains
      come only from spreading placed protocol roles — the ZAB leader, the
      chain head/tail — across nodes, not from extra compute.
    * **parallel** — each shard owns a dedicated simulation over its key
      partition and replays its slice of the unsharded request stream; the
      runner executes the shards in separate worker processes and merges
      the metrics deterministically. This is the scale-out model: aggregate
      throughput grows with S.

    ``S = 1`` is the classic unsharded deployment and anchors both columns.
    """
    scale = scale or Scale.default()
    result = FigureResult(
        figure=figure_label
        or "Shard scaling (key-range partitioned groups, 20% writes, uniform)",
        headers=[
            "protocol",
            "shards",
            "coupled_ops_s",
            "parallel_ops_s",
            "parallel_speedup",
        ],
        notes=(
            "coupled: shards share node CPU/NIC on one simulated cluster; "
            "parallel: independent shards merged across worker processes; "
            "speedup is parallel throughput relative to the same protocol at S=1"
        ),
    )
    cells = []
    for protocol in protocols:
        base = ExperimentSpec(
            protocol=protocol,
            write_ratio=write_ratio,
            zipfian_exponent=zipfian_exponent,
            label="shardscale" if zipfian_exponent is None else "shardskew",
        ).with_scale(scale)
        cells.append(((protocol, 1, "base"), base))
        for shards in shard_counts:
            if shards == 1:
                continue
            cells.append(
                ((protocol, shards, "coupled"), replace(base, shards=shards))
            )
            cells.append(
                (
                    (protocol, shards, "parallel"),
                    replace(base, shards=shards, shard_mode="parallel"),
                )
            )
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for protocol in protocols:
        base_run = runs[(protocol, 1, "base")]
        for shards in shard_counts:
            if shards == 1:
                coupled = parallel = base_run
            else:
                coupled = runs[(protocol, shards, "coupled")]
                parallel = runs[(protocol, shards, "parallel")]
            speedup = (
                parallel.throughput / base_run.throughput if base_run.throughput else 0.0
            )
            result.data[(protocol, shards)] = {
                "coupled": coupled.throughput,
                "parallel": parallel.throughput,
                "parallel_speedup": speedup,
            }
            result.rows.append(
                [
                    protocol,
                    shards,
                    f"{coupled.throughput:,.0f}",
                    f"{parallel.throughput:,.0f}",
                    f"{speedup:.2f}x",
                ]
            )
    return result


def figure_shard_scale_skew(
    scale: Optional[Scale] = None,
    protocols: Sequence[str] = MAIN_PROTOCOLS,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    write_ratio: float = 0.20,
    zipfian_exponent: float = 0.99,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Shard scaling under zipfian skew (the ROADMAP's hot-shard sweep).

    The same grid as :func:`figure_shard_scale` but with zipfian(0.99)
    keys: hash partitioning (integer keys map by modulo) spreads the head
    of the distribution across shards, so parallel-mode scaling survives
    skew, while per-shard load imbalance and hot-key write serialization
    compress the gains relative to the uniform sweep — the effect this
    figure quantifies.
    """
    return figure_shard_scale(
        scale=scale,
        protocols=protocols,
        shard_counts=shard_counts,
        write_ratio=write_ratio,
        zipfian_exponent=zipfian_exponent,
        figure_label=(
            "Shard scaling under skew (key-range partitioned groups, "
            "20% writes, zipfian 0.99)"
        ),
        seed=seed,
        jobs=jobs,
    )


# ---------------------------------------------------------------------------
# Cross-shard transactions: 2PC over shard groups (repro.cluster.txn)
# ---------------------------------------------------------------------------
def figure_txn(
    scale: Optional[Scale] = None,
    protocol: str = "hermes",
    shard_counts: Sequence[int] = SHARD_COUNTS,
    cross_shard_points: Sequence[float] = TXN_CROSS_SHARD_POINTS,
    txn_fraction: float = TXN_FRACTION,
    txn_keys: int = TXN_KEYS,
    write_ratio: float = 0.5,
    zipfian_exponent: float = 0.99,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Multi-key transactions over shard groups: cross-shard cost and aborts.

    Sweeps the cross-shard probability of a ``txn_mix`` workload (25%
    2-key transactions, zipfian(0.99) keys for contention) at S ∈ {1, 2,
    4, 8} coupled shards. Expected shape:

    * a ``txn off`` control per shard count isolates the transaction
      layer's overhead at identical load;
    * at fixed S > 1, the **abort rate rises monotonically with the
      cross-shard probability**: cross-shard transactions hold their
      no-wait key locks across the full two-phase round instead of a
      single lock-master visit, widening the conflict window;
    * ``S = 1`` runs entirely on the single-shard fast path
      (``txns_cross_shard == 0``) regardless of the requested cross-shard
      probability, so only the 0.0 point is swept.
    """
    scale = scale or Scale.default()
    result = FigureResult(
        figure="Cross-shard transactions (2PC over shard groups, zipfian 0.99)",
        headers=[
            "shards",
            "cross_shard_p",
            "throughput",
            "txns_committed",
            "txns_aborted",
            "abort_rate",
            "p99_us",
        ],
        notes=(
            f"{txn_fraction:.0%} of requests are {txn_keys}-key transactions; "
            "no-wait locks at per-shard lock masters; aborts are lock "
            "conflicts; 'off' rows run the identical workload without "
            "transactions"
        ),
    )
    base = ExperimentSpec(
        protocol=protocol,
        write_ratio=write_ratio,
        zipfian_exponent=zipfian_exponent,
        label="txn",
    ).with_scale(scale)
    cells = []
    for shards in shard_counts:
        cells.append(((shards, "off"), replace(base, shards=shards)))
        points = cross_shard_points if shards > 1 else cross_shard_points[:1]
        for cross in points:
            cells.append(
                (
                    (shards, cross),
                    replace(
                        base,
                        shards=shards,
                        txn_fraction=txn_fraction,
                        txn_keys=txn_keys,
                        txn_cross_shard=cross,
                    ),
                )
            )
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for key, _spec in cells:
        run = runs[key]
        shards, cross = key
        committed = run.cluster_stats["txns_committed"]
        aborted = run.cluster_stats["txns_aborted"]
        finished = committed + aborted
        abort_rate = aborted / finished if finished else 0.0
        result.data[key] = {
            "throughput": run.throughput,
            "txns_committed": committed,
            "txns_aborted": aborted,
            "txns_cross_shard": run.cluster_stats["txns_cross_shard"],
            "abort_rate": abort_rate,
            "p99_us": run.overall_latency.p99_us,
        }
        result.rows.append(
            [
                shards,
                cross if cross == "off" else f"{cross:.1f}",
                f"{run.throughput:,.0f}",
                committed,
                aborted,
                f"{abort_rate:.3f}",
                f"{run.overall_latency.p99_us:.1f}",
            ]
        )
    return result


def figure_txn_grid(
    scale: Optional[Scale] = None,
    protocol: str = "hermes",
    shards: int = TXN_GRID_SHARDS,
    txn_fractions: Sequence[float] = TXN_FRACTION_POINTS,
    txn_keys_points: Sequence[int] = TXN_KEYS_POINTS,
    txn_cross_shard: float = 0.5,
    write_ratio: float = 0.5,
    zipfian_exponent: float = 0.99,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """The contention surface: ``txn_fraction`` x ``txn_keys`` at fixed shards.

    Complements :func:`figure_txn` (which sweeps the cross-shard
    probability) by sweeping the other two transaction-grid axes at S =
    ``TXN_GRID_SHARDS`` coupled shards and a 50% cross-shard probability.
    Expected shape:

    * at fixed ``txn_keys``, raising ``txn_fraction`` grows the absolute
      number of aborts roughly linearly — more transactions contend for
      the same zipfian-hot locks;
    * at fixed ``txn_fraction``, raising ``txn_keys`` raises the **abort
      rate**: every extra key is another no-wait lock the transaction must
      win, and another chance to span a second shard and hold its locks
      across the full 2PC round.
    """
    scale = scale or Scale.default()
    result = FigureResult(
        figure=(
            f"Transaction grid (txn_fraction x txn_keys, {shards} coupled "
            "shards, zipfian 0.99)"
        ),
        headers=[
            "txn_fraction",
            "txn_keys",
            "throughput",
            "txns_committed",
            "txns_aborted",
            "abort_rate",
            "p99_us",
        ],
        notes=(
            f"{txn_cross_shard:.0%} of generated transactions span shards; "
            "no-wait locks at per-shard lock masters; aborts are lock "
            "conflicts"
        ),
    )
    base = ExperimentSpec(
        protocol=protocol,
        write_ratio=write_ratio,
        zipfian_exponent=zipfian_exponent,
        shards=shards,
        txn_cross_shard=txn_cross_shard,
        label="txngrid",
    ).with_scale(scale)
    cells = []
    for fraction in txn_fractions:
        for keys in txn_keys_points:
            cells.append(
                (
                    (fraction, keys),
                    replace(base, txn_fraction=fraction, txn_keys=keys),
                )
            )
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for key, _spec in cells:
        run = runs[key]
        fraction, keys = key
        committed = run.cluster_stats["txns_committed"]
        aborted = run.cluster_stats["txns_aborted"]
        finished = committed + aborted
        abort_rate = aborted / finished if finished else 0.0
        result.data[key] = {
            "throughput": run.throughput,
            "txns_committed": committed,
            "txns_aborted": aborted,
            "txns_cross_shard": run.cluster_stats["txns_cross_shard"],
            "abort_rate": abort_rate,
            "p99_us": run.overall_latency.p99_us,
        }
        result.rows.append(
            [
                f"{fraction:.2f}",
                keys,
                f"{run.throughput:,.0f}",
                committed,
                aborted,
                f"{abort_rate:.3f}",
                f"{run.overall_latency.p99_us:.1f}",
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Figure 7: scalability with replication degree
# ---------------------------------------------------------------------------
def figure_7_scalability(
    scale: Optional[Scale] = None,
    protocols: Sequence[str] = MAIN_PROTOCOLS,
    replica_counts: Sequence[int] = (3, 5, 7),
    write_ratios: Sequence[float] = (0.01, 0.20),
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 7: throughput for 3/5/7 replicas at 1% and 20% writes (uniform)."""
    scale = scale or Scale.default()
    result = FigureResult(
        figure="Figure 7 (scalability with replication degree)",
        headers=["write_ratio", "protocol", *[f"{n} nodes" for n in replica_counts]],
    )
    cells = [
        (
            (protocol, ratio, replicas),
            ExperimentSpec(
                protocol=protocol,
                num_replicas=replicas,
                write_ratio=ratio,
                label="fig7",
            ).with_scale(scale),
        )
        for ratio in write_ratios
        for protocol in protocols
        for replicas in replica_counts
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for ratio in write_ratios:
        for protocol in protocols:
            row: List[object] = [f"{ratio:.0%}", protocol]
            for replicas in replica_counts:
                run = runs[(protocol, ratio, replicas)]
                result.data[(protocol, ratio, replicas)] = run.throughput
                row.append(f"{run.throughput:,.0f}")
            result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 8: comparison to Derecho (write-only, varying object size)
# ---------------------------------------------------------------------------
def figure_8_derecho(
    scale: Optional[Scale] = None,
    object_sizes: Sequence[int] = (32, 256, 1024),
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 8: single-threaded Hermes vs Derecho, write-only workload."""
    scale = scale or Scale.default()
    result = FigureResult(
        figure="Figure 8 (Hermes single-thread vs Derecho, write-only)",
        headers=["object_size", "hermes", "derecho", "ratio"],
        notes="both systems limited to one worker thread per node (paper §6.5)",
    )
    cells = [
        (
            (protocol, size),
            ExperimentSpec(
                protocol=protocol,
                write_ratio=1.0,
                value_size=size,
                worker_threads=1,
                label="fig8",
            ).with_scale(scale),
        )
        for size in object_sizes
        for protocol in ("hermes", "derecho")
    ]
    all_runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for size in object_sizes:
        hermes_tput = all_runs[("hermes", size)].throughput
        derecho_tput = all_runs[("derecho", size)].throughput
        ratio = hermes_tput / derecho_tput if derecho_tput else float("inf")
        result.data[size] = {"hermes": hermes_tput, "derecho": derecho_tput, "ratio": ratio}
        result.rows.append(
            [f"{size}B", f"{hermes_tput:,.0f}", f"{derecho_tput:,.0f}", f"{ratio:.1f}x"]
        )
    return result


# ---------------------------------------------------------------------------
# Figure 9: throughput timeline across a node failure
# ---------------------------------------------------------------------------
def _require_coupled(figure: str, shard_mode: str) -> None:
    """Membership/view-change scenarios need one shared simulation."""
    if shard_mode != "coupled":
        raise BenchmarkError(
            f"{figure} is a membership/view-change scenario and requires "
            "shard_mode='coupled': parallel shard execution runs each shard "
            "as an independent simulation, so there is no shared cluster for "
            "the RM service to reconfigure. Re-run with --shard-mode coupled "
            "(the default)."
        )


def figure_9_failure(
    write_ratio: float = 0.05,
    num_replicas: int = 5,
    num_keys: int = 1_000,
    crash_time: float = 0.060,
    detection_timeout: float = 0.150,
    total_time: float = 0.400,
    think_time: float = 120e-6,
    clients_per_replica: int = 3,
    window: float = 0.010,
    shards: int = 1,
    shard_mode: str = "coupled",
    txn_fraction: float = 0.10,
    txn_keys: int = 2,
    recover_time: Optional[float] = None,
    seed: int = 1,
) -> FigureResult:
    """Figure 9: HermesKV throughput before, during and after a node failure.

    A five-node Hermes deployment runs with the RM service enabled; one node
    is crashed at ``crash_time``. Live nodes block on the failed node's ACKs,
    throughput collapses, and once the conservative detection timeout and the
    outstanding leases expire the membership is reliably updated and
    throughput recovers (at a lower steady state, since one replica is gone).

    With ``shards > 1`` the same scenario runs on a sharded cluster: one
    per-node membership stack serves every co-hosted shard, the crashed node
    is a shard's transaction lock master (so in-flight 2PC aborts and
    lock-table recovery are exercised — ``txn_fraction`` of requests are
    multi-key transactions), the node is later recovered (it rejoins as a
    live process but stays outside the view), and the run records a full
    history that is checked for per-key linearizability and transaction
    atomicity. The unsharded default is byte-identical to the classic
    Figure 9 setup.
    """
    _require_coupled("figure 9", shard_mode)
    sharded = shards > 1
    membership = MembershipConfig(
        lease_duration=0.040,
        renewal_interval=0.010,
        detection=FailureDetectorConfig(ping_interval=0.010, detection_timeout=detection_timeout),
    )
    config = ClusterConfig(
        protocol="hermes",
        num_replicas=num_replicas,
        shards=shards,
        seed=seed,
        run_membership_service=True,
        membership=membership,
    )
    cluster = Cluster(config)
    workload = WorkloadMix(
        distribution=UniformKeys(num_keys),
        write_ratio=write_ratio,
        value_size=32,
        seed=seed,
        txn_fraction=txn_fraction if sharded else 0.0,
        txn_keys=txn_keys,
        txn_cross_shard=0.5 if sharded else 0.0,
        txn_num_shards=shards,
    )
    cluster.preload(workload.initial_dataset())

    # Unsharded: crash the last node (the classic setup). Sharded: crash a
    # shard's lock master so transaction recovery is exercised too. The
    # schedule is declarative (FailureEvent list through a FailureInjector):
    # arming schedules exactly one engine event per fault at the same code
    # position the hand-wired crash_at/schedule_at pair used to, so the
    # event-sequence allocation — and hence every artifact byte — is
    # unchanged.
    crashed_node = (shards - 1) % num_replicas if sharded else max(cluster.node_ids)
    faults = [FailureEvent.crash(crash_time, crashed_node)]
    if sharded:
        if recover_time is None:
            recover_time = crash_time + 0.200
        if recover_time < total_time:
            faults.append(FailureEvent.recover(recover_time, crashed_node))
    FailureInjector(cluster, faults).arm()

    history = History() if sharded else None
    clients: List[ClosedLoopClient] = []
    client_id = 0
    for node_id in cluster.node_ids:
        # Clients of the failed node simply stop completing requests after
        # the crash; including them shows the lower post-recovery steady
        # state (one replica's worth of serving capacity is gone).
        for _ in range(clients_per_replica):
            clients.append(
                ClosedLoopClient(
                    client_id=client_id,
                    cluster=cluster,
                    workload=workload,
                    max_ops=10**9,
                    think_time=think_time,
                    replica_id=node_id,
                    history=history,
                )
            )
            client_id += 1
    for client in clients:
        client.start()
    cluster.run(until=total_time)

    results = []
    for client in clients:
        results.extend(client.results)
    series = throughput_timeseries(results, window=window, end_time=total_time)

    reconfig_times = (
        cluster.membership_service.reconfiguration_times if cluster.membership_service else []
    )
    result = FigureResult(
        figure="Figure 9 (throughput under a node failure)"
        + (f", {shards} shards" if sharded else ""),
        headers=["time_ms", "ops_per_sec"],
        notes=(
            f"node {crashed_node} crashed at {crash_time * 1e3:.0f} ms; "
            f"membership reconfigured at "
            + ", ".join(f"{t * 1e3:.1f} ms" for t in reconfig_times)
        ),
    )
    for time_s, ops in series:
        result.rows.append([f"{time_s * 1e3:.0f}", f"{ops:,.0f}"])
    result.data = {
        "series": series,
        "crash_time": crash_time,
        "reconfiguration_times": reconfig_times,
        "window": window,
    }
    if sharded:
        from repro.verification import check_all

        report = check_all(history, initial_values=workload.initial_dataset())
        txn_report = report.checker("transactions")
        participants = [
            replica._txn_participant
            for replica in cluster.all_replicas()
            if replica._txn_participant is not None
        ]
        result.data.update(
            {
                "shards": shards,
                "recover_time": recover_time,
                "linearizable": report.passed("linearizability"),
                "txn_check_ok": txn_report.ok,
                "txns_committed": cluster.txn_stat("txns_committed"),
                "txns_aborted": cluster.txn_stat("txns_aborted"),
                "txns_timedout": cluster.txn_stat("txns_timedout"),
                "txns_view_aborted": cluster.txn_stat("txns_view_aborted"),
                "participant_view_aborts": sum(p.view_change_aborts for p in participants),
            }
        )
        result.notes += (
            f"; sharded run verified: linearizable={result.data['linearizable']}, "
            f"txn atomicity={txn_report.ok} "
            f"({txn_report.details['committed']} committed / "
            f"{txn_report.details['aborted']} aborted txns)"
        )
    return result


# ---------------------------------------------------------------------------
# Live shard migration: view-change-driven rebalance of a key range
# ---------------------------------------------------------------------------
def figure_migrate(
    shards: int = 4,
    source_shard: int = 0,
    target_shard: Optional[int] = None,
    num_replicas: int = 5,
    write_ratio: float = 0.20,
    num_keys: int = 1_000,
    migrate_time: float = 0.080,
    total_time: float = 0.240,
    think_time: float = 120e-6,
    clients_per_replica: int = 3,
    shard_mode: str = "coupled",
    seed: int = 1,
) -> FigureResult:
    """Live shard migration: throughput rebalances across shard groups.

    A sharded Hermes cluster runs with the RM service enabled; at
    ``migrate_time`` the service starts a planned rebalance moving half of
    ``source_shard``'s key range to ``target_shard`` (freeze → copy through
    the target protocol's replicated write path → Paxos-decided routing
    flip → release of parked operations). The figure reports each shard's
    served throughput before and after the flip: the source's share drops
    by roughly the migrated fraction and the target's share rises by the
    same amount, while the run's full history passes the per-key
    linearizability checker and the migration-atomicity checker (no
    operation observes pre-migration state after the flip).
    """
    _require_coupled("figure migrate", shard_mode)
    if shards < 2:
        raise BenchmarkError("figure migrate requires shards >= 2")
    if target_shard is None:
        # Default target scales with the shard count (the "opposite" shard:
        # 2 of 4 at the defaults), so --shards S just works for any S >= 2.
        target_shard = default_target(source_shard, shards)
    migration = ShardMigration(source=source_shard, target=target_shard)
    try:
        migration.validate(shards)
    except ConfigurationError as exc:
        raise BenchmarkError(f"figure migrate: {exc}") from exc
    membership = MembershipConfig(
        lease_duration=0.040,
        renewal_interval=0.010,
        detection=FailureDetectorConfig(ping_interval=0.010, detection_timeout=0.150),
        migrations=[PlannedMigration(at_time=migrate_time, migration=migration)],
    )
    config = ClusterConfig(
        protocol="hermes",
        num_replicas=num_replicas,
        shards=shards,
        seed=seed,
        run_membership_service=True,
        membership=membership,
    )
    cluster = Cluster(config)
    workload = WorkloadMix(
        distribution=UniformKeys(num_keys),
        write_ratio=write_ratio,
        value_size=32,
        seed=seed,
    )
    cluster.preload(workload.initial_dataset())

    history = History()
    clients: List[ClosedLoopClient] = []
    client_id = 0
    for node_id in cluster.node_ids:
        for _ in range(clients_per_replica):
            clients.append(
                ClosedLoopClient(
                    client_id=client_id,
                    cluster=cluster,
                    workload=workload,
                    max_ops=10**9,
                    think_time=think_time,
                    replica_id=node_id,
                    history=history,
                )
            )
            client_id += 1
    for client in clients:
        client.start()
    cluster.run(until=total_time)

    records = cluster.migration_records
    if not records:
        raise BenchmarkError(
            "the planned migration did not complete within the run; "
            "increase total_time or move migrate_time earlier"
        )
    record = records[0]
    flip_time = record.flip_time

    # Per-shard served ops, attributed to the owning shard at completion
    # time: migrated keys count toward the source before the flip and the
    # target after it.
    results = [r for c in clients for r in c.results if r.ok]
    num_shards = shards
    flips = [(record.migration, record.flip_time) for record in records]

    def owner_of(result) -> int:
        return owner_at(result.op.key, num_shards, flips, result.end_time)

    # Measurement windows clear of the start-up ramp and the freeze window.
    pre_lo, pre_hi = migrate_time * 0.25, migrate_time
    post_lo, post_hi = flip_time + 0.010, total_time - 0.010
    pre_counts = [0] * num_shards
    post_counts = [0] * num_shards
    for r in results:
        end = r.end_time
        if pre_lo <= end < pre_hi:
            pre_counts[owner_of(r)] += 1
        elif post_lo <= end < post_hi:
            post_counts[owner_of(r)] += 1
    pre_span = pre_hi - pre_lo
    post_span = post_hi - post_lo

    from repro.verification import check_all

    report = check_all(
        history,
        initial_values=workload.initial_dataset(),
        migration_records=[record],
        include_transactions=False,
    )
    linearizable = report.passed("linearizability")
    migration_check = report.checker("migration")

    result = FigureResult(
        figure=f"Live shard migration ({shards} shards, half of shard "
        f"{source_shard} -> shard {target_shard})",
        headers=["shard", "pre_ops_s", "post_ops_s", "post/pre"],
        notes=(
            f"migration started at {migrate_time * 1e3:.0f} ms, froze at "
            f"{record.freeze_time * 1e3:.2f} ms, copied {len(record.values)} keys, "
            f"flipped at {flip_time * 1e3:.2f} ms; linearizable={linearizable}, "
            f"migration atomicity={migration_check.ok} "
            f"({migration_check.details['reads_checked']} post-flip reads checked)"
        ),
    )
    for shard in range(num_shards):
        pre_rate = pre_counts[shard] / pre_span if pre_span > 0 else 0.0
        post_rate = post_counts[shard] / post_span if post_span > 0 else 0.0
        ratio = post_rate / pre_rate if pre_rate else 0.0
        result.data[shard] = {
            "pre_ops_s": pre_rate,
            "post_ops_s": post_rate,
            "ratio": ratio,
        }
        result.rows.append(
            [shard, f"{pre_rate:,.0f}", f"{post_rate:,.0f}", f"{ratio:.2f}x"]
        )
    result.data["summary"] = {
        "migrated_keys": len(record.values),
        "freeze_time": record.freeze_time,
        "frozen_time": record.frozen_time,
        "copied_time": record.copied_time,
        "flip_time": flip_time,
        "linearizable": linearizable,
        "migration_check_ok": migration_check.ok,
        "post_flip_reads_checked": migration_check.details["reads_checked"],
    }
    return result


# ---------------------------------------------------------------------------
# Flash crowd: elastic resharding under a shifting zipfian hot head
# ---------------------------------------------------------------------------
def figure_flashcrowd(
    shards: int = 4,
    num_replicas: int = 4,
    write_ratio: float = 0.05,
    keys_per_shard: int = 128,
    zipf_exponent: float = 0.5,
    shift_time: float = 0.100,
    total_time: float = 0.300,
    think_time: float = 5e-6,
    clients_per_replica: int = 6,
    window: float = 0.020,
    shard_mode: str = "coupled",
    seed: int = 1,
) -> FigureResult:
    """Flash crowd vs the autoscaler: aggregate throughput recovery.

    A chain-replication deployment (tail-only linearizable reads — the
    classic CR hot-spot weakness) runs a read-heavy zipfian workload whose
    entire key population lives on one shard; mid-run the crowd shifts to a
    different shard (:class:`~repro.workloads.distributions.
    ShiftingHotspotKeys`). Per-node CPU is modelled single-core so the hot
    shard's tail genuinely saturates: aggregate throughput is capped by
    one node while three idle.

    The same seeded scenario runs twice: a ``policy=off`` control row, and
    a ``policy=on`` row where the autoscale loop co-hosted with the
    membership service (:mod:`repro.cluster.autoscale`) watches per-shard
    load and splits the hot shard's slice to cold shards through the live
    freeze/copy/flip pipeline — including re-splitting after the crowd
    shifts. The artifact reports per-window per-shard throughput for both
    rows, the migration rounds the policy executed, and the post-shift
    aggregate recovery ratio (``policy=on`` / ``policy=off``), with the
    full verification stack (linearizability + transaction atomicity +
    migration atomicity) stamped per row.
    """
    from repro.cluster.autoscale import AutoscaleConfig
    from repro.sim.node import ServiceTimeModel
    from repro.verification import check_all
    from repro.workloads.distributions import ShiftingHotspotKeys

    _require_coupled("figure flashcrowd", shard_mode)
    if shards < 2:
        raise BenchmarkError("figure flashcrowd requires shards >= 2")
    num_keys = keys_per_shard * shards
    initial_hot = 0
    shifted_hot = 1 % shards
    # Post-shift measurement starts once the policy has had time to detect
    # the new hot shard and re-split it (a few sampling windows plus
    # migration rounds); both rows use the same windows.
    post_lo, post_hi = shift_time + 0.060, total_time - 0.010
    pre_lo, pre_hi = shift_time * 0.30, shift_time

    def scenario(policy_on: bool) -> Dict[str, object]:
        autoscale = (
            AutoscaleConfig(
                interval=8e-3,
                window_ticks=2,
                imbalance_threshold=1.6,
                min_ops_per_window=200,
                cooldown=12e-3,
                max_rounds=8,
                seed=seed,
            )
            if policy_on
            else None
        )
        membership = MembershipConfig(
            lease_duration=0.040,
            renewal_interval=0.010,
            detection=FailureDetectorConfig(ping_interval=0.010, detection_timeout=0.150),
            autoscale=autoscale,
        )
        config = ClusterConfig(
            protocol="cr",
            num_replicas=num_replicas,
            shards=shards,
            seed=seed,
            run_membership_service=True,
            membership=membership,
            # Single-core nodes: the flash crowd must be able to saturate
            # the hot shard's tail (the default 20-thread model never
            # binds at client counts a bespoke figure can afford).
            service_model=ServiceTimeModel(
                base=2e-6, send_overhead=0.5e-6, worker_threads=1
            ),
        )
        cluster = Cluster(config)
        distribution = ShiftingHotspotKeys(
            num_keys, shards, hot_shard=initial_hot, exponent=zipf_exponent
        )
        workload = WorkloadMix(
            distribution=distribution,
            write_ratio=write_ratio,
            value_size=32,
            seed=seed,
        )
        cluster.preload(workload.initial_dataset())
        history = History()
        clients: List[ClosedLoopClient] = []
        client_id = 0
        for node_id in cluster.node_ids:
            for _ in range(clients_per_replica):
                clients.append(
                    ClosedLoopClient(
                        client_id=client_id,
                        cluster=cluster,
                        workload=workload,
                        max_ops=10**9,
                        think_time=think_time,
                        replica_id=node_id,
                        history=history,
                    )
                )
                client_id += 1
        for client in clients:
            client.start()
        cluster.sim.schedule_at(shift_time, distribution.set_hot_shard, shifted_hot)
        cluster.run(until=total_time)

        records = cluster.migration_records
        flips = [(record.migration, record.flip_time) for record in records]
        results = [r for c in clients for r in c.results if r.ok]

        num_windows = int(round(total_time / window))
        per_window = [[0] * shards for _ in range(num_windows)]
        for r in results:
            index = int(r.end_time / window)
            if 0 <= index < num_windows:
                per_window[index][owner_at(r.op.key, shards, flips, r.end_time)] += 1
        series = [
            {
                "time": index * window,
                "per_shard_ops_s": [count / window for count in counts],
                "total_ops_s": sum(counts) / window,
            }
            for index, counts in enumerate(per_window)
        ]
        pre_ops = sum(1 for r in results if pre_lo <= r.end_time < pre_hi)
        post_ops = sum(1 for r in results if post_lo <= r.end_time < post_hi)

        report = check_all(
            history,
            initial_values=workload.initial_dataset(),
            migration_records=records,
        )
        service = cluster.membership_service
        autoscaler = cluster.autoscaler
        return {
            "series": series,
            "pre_rate": pre_ops / (pre_hi - pre_lo),
            "post_rate": post_ops / (post_hi - post_lo),
            "rounds": [
                {
                    "time": entry.time,
                    "source": entry.migration.source,
                    "target": entry.migration.target,
                    "stride": entry.migration.stride,
                    "offset": entry.migration.offset,
                }
                for entry in (autoscaler.rounds if autoscaler else [])
            ],
            "migrations_completed": len(records),
            "migrations_cancelled": service.migrations_cancelled,
            "check_all_ok": report.ok,
            "checks": report.summary(),
        }

    off = scenario(False)
    on = scenario(True)
    recovery_ratio = on["post_rate"] / off["post_rate"] if off["post_rate"] else 0.0

    result = FigureResult(
        figure=f"Flash crowd vs autoscale ({shards} shards, hot shard "
        f"{initial_hot} -> {shifted_hot} at {shift_time * 1e3:.0f} ms)",
        headers=["policy", "window_ms", *[f"shard{s}_ops_s" for s in range(shards)], "total_ops_s"],
        notes=(
            f"post-shift aggregate recovery {recovery_ratio:.2f}x "
            f"(policy=on {on['post_rate']:,.0f} ops/s vs policy=off "
            f"{off['post_rate']:,.0f} ops/s over [{post_lo * 1e3:.0f}, "
            f"{post_hi * 1e3:.0f}) ms); {len(on['rounds'])} autoscale rounds, "
            f"{on['migrations_cancelled']} cancelled; check_all: "
            f"off={off['check_all_ok']}, on={on['check_all_ok']}"
        ),
    )
    for policy, row_data in (("off", off), ("on", on)):
        for entry in row_data["series"]:
            result.rows.append(
                [
                    policy,
                    f"{entry['time'] * 1e3:.0f}",
                    *[f"{rate:,.0f}" for rate in entry["per_shard_ops_s"]],
                    f"{entry['total_ops_s']:,.0f}",
                ]
            )
    result.data = {
        "off": off,
        "on": on,
        "recovery_ratio": recovery_ratio,
        "shift_time": shift_time,
        "window": window,
        "shards": shards,
        "post_window": [post_lo, post_hi],
    }
    return result


# ---------------------------------------------------------------------------
# Table 2: protocol feature comparison
# ---------------------------------------------------------------------------
def table_2_features(protocols: Sequence[str] = ("hermes", "craq", "zab", "derecho", "cr")) -> FigureResult:
    """Table 2: read/write feature comparison of the evaluated systems."""
    registry = protocol_registry()
    result = FigureResult(
        figure="Table 2 (protocol features)",
        headers=[
            "system",
            "local reads",
            "leases",
            "consistency",
            "inter-key concurrent",
            "decentralized",
            "write latency (RTT)",
        ],
    )
    for name in protocols:
        features = registry[name].features()
        result.data[name] = features
        result.rows.append(
            [
                features.name,
                "yes" if features.local_reads else "no",
                features.leases,
                features.consistency,
                "yes" if features.inter_key_concurrent_writes else "no",
                "yes" if features.decentralized_writes else "no",
                features.write_latency_rtt,
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------
def ablation_optimizations(
    scale: Optional[Scale] = None,
    write_ratio: float = 0.20,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Ablation: Hermes optimizations O1 (skip VALs), O2 (virtual ids), O3 (ACK broadcast)."""
    scale = scale or Scale.default()
    variants: Dict[str, HermesConfig] = {
        "baseline (O1 on)": HermesConfig(),
        "no O1 (always VAL)": HermesConfig(skip_unneeded_vals=False),
        "O2 (4 virtual ids)": HermesConfig(virtual_ids_per_node=4),
        "O3 (broadcast ACKs)": HermesConfig(broadcast_acks=True),
    }
    result = FigureResult(
        figure="Ablation: Hermes protocol optimizations",
        headers=["variant", "throughput", "write_p99_us", "messages_sent"],
    )
    cells = [
        (
            label,
            ExperimentSpec(
                protocol="hermes",
                write_ratio=write_ratio,
                hermes=hermes_config,
                label="ablation-opt",
            ).with_scale(scale),
        )
        for label, hermes_config in variants.items()
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for label in variants:
        run = runs[label]
        result.data[label] = {
            "throughput": run.throughput,
            "write_p99_us": run.write_latency.p99_us,
            "messages_sent": run.cluster_stats["messages_sent"],
        }
        result.rows.append(
            [
                label,
                f"{run.throughput:,.0f}",
                f"{run.write_latency.p99_us:.1f}",
                run.cluster_stats["messages_sent"],
            ]
        )
    return result


def ablation_wings_batching(
    scale: Optional[Scale] = None,
    write_ratio: float = 0.20,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Ablation: direct one-packet-per-message transport vs Wings batching."""
    scale = scale or Scale.default()
    result = FigureResult(
        figure="Ablation: Wings opportunistic batching",
        headers=["transport", "throughput", "network_packets"],
    )
    cells = [
        (
            label,
            ExperimentSpec(
                protocol="hermes",
                write_ratio=write_ratio,
                use_wings=use_wings,
                label="ablation-wings",
            ).with_scale(scale),
        )
        for label, use_wings in (("direct", False), ("wings batching", True))
    ]
    runs = run_cells(cells, root_seed=seed, jobs=jobs)
    for label in ("direct", "wings batching"):
        run = runs[label]
        result.data[label] = {
            "throughput": run.throughput,
            "network_packets": run.cluster_stats["messages_sent"],
        }
        result.rows.append(
            [label, f"{run.throughput:,.0f}", run.cluster_stats["messages_sent"]]
        )
    return result


#: Session populations swept by the user-count figure.
USER_SWEEP_SESSIONS: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)

#: Shard counts swept by the user-count figure (parallel execution: each
#: shard owns a dedicated simulation over its key partition).
USER_SWEEP_SHARD_COUNTS: Tuple[int, ...] = (8, 16, 32, 64)

#: Aggregate offered load (operations per simulated second) held fixed
#: across every usersweep cell, so delivered throughput and latency isolate
#: the session-count and shard-count axes.
USER_SWEEP_OFFERED_LOAD: float = 2.0e6


def figure_usersweep(
    scale: Optional[Scale] = None,
    protocol: str = "hermes",
    session_counts: Sequence[int] = USER_SWEEP_SESSIONS,
    shard_counts: Sequence[int] = USER_SWEEP_SHARD_COUNTS,
    write_ratio: float = 0.05,
    zipfian_exponent: Optional[float] = 0.99,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Million-session sweep on the aggregated client model.

    Sweeps the synthetic session population against the shard count with
    one open-loop :class:`~repro.cluster.client.AggregatedClient` generator
    per node (``client_model="aggregated"``) and parallel shard execution.
    The simulated *work* per cell is fixed by the scale preset
    (``clients_per_replica * ops_per_client`` operations per node), so a
    10^6-session cell costs the same simulation effort as a 10^3-session
    one — the point of the aggregated model, and what makes "millions of
    users" a smoke-scale run. Every cell records a history and stamps the
    full ``check_all`` verdict into the artifact: scaling the population
    must not cost protocol fidelity.

    Wall-clock throughput (simulated users served per second of real time,
    the PR's headline number) is deliberately *not* written into the
    artifact — artifacts are byte-deterministic at any ``--jobs`` — and is
    measured separately by ``scripts/usersweep_speedup.py``.
    """
    scale = scale or Scale.default()
    cells = []
    for sessions in session_counts:
        for shards in shard_counts:
            spec = replace(
                ExperimentSpec(
                    protocol=protocol,
                    write_ratio=write_ratio,
                    zipfian_exponent=zipfian_exponent,
                    label="usersweep",
                    record_history=True,
                ).with_scale(scale),
                client_model="aggregated",
                sessions=sessions,
                offered_load=USER_SWEEP_OFFERED_LOAD,
                shards=shards,
                shard_mode="parallel",
            )
            cells.append(((sessions, shards), spec))
    runs = run_cells(cells, root_seed=seed, jobs=jobs, keep_results=True)

    from repro.verification import check_all

    # The preloaded dataset is seed-independent (values are factory(key, 0)),
    # so one workload instance serves every cell's checker.
    initial_values = build_workload(cells[0][1]).initial_dataset()
    result = FigureResult(
        figure=f"User sweep ({protocol}, aggregated client model, "
        f"zipfian {zipfian_exponent}, {write_ratio:.0%} writes)",
        headers=[
            "sessions",
            "shards",
            "delivered_ops_s",
            "median_us",
            "p99_us",
            "completed_ops",
            "check_all_ok",
        ],
        notes=(
            "one aggregated generator per node stands in for sessions/"
            "num_replicas sessions (merged Poisson arrivals at "
            f"{USER_SWEEP_OFFERED_LOAD:,.0f} ops/s aggregate); simulation "
            "cost is bounded by the scale preset's op budget, independent "
            "of the session count; check_all verdicts cover every cell's "
            "merged per-shard history; wall-clock users/sec is measured by "
            "scripts/usersweep_speedup.py (not stored: artifacts are "
            "byte-deterministic)"
        ),
    )
    all_ok = True
    for sessions in session_counts:
        for shards in shard_counts:
            run = runs[(sessions, shards)]
            report = check_all(run.history, initial_values=initial_values)
            all_ok = all_ok and report.ok
            result.data[(sessions, shards)] = {
                "sessions": sessions,
                "shards": shards,
                "offered_ops_s": USER_SWEEP_OFFERED_LOAD,
                "delivered_ops_s": run.throughput,
                "completed_ops": len(run.results),
                "median_us": run.overall_latency.median * 1e6,
                "p99_us": run.overall_latency.p99 * 1e6,
                "check_all_ok": report.ok,
                "checks": report.summary(),
            }
            result.rows.append(
                [
                    sessions,
                    shards,
                    f"{run.throughput:,.0f}",
                    f"{run.overall_latency.median * 1e6:.2f}",
                    f"{run.overall_latency.p99 * 1e6:.2f}",
                    len(run.results),
                    report.ok,
                ]
            )
    result.notes += f"; all cells check_all_ok={all_ok}"
    return result
