"""Microbenchmarks for the discrete-event simulation engine.

The engine executes every message delivery, CPU-service completion, client
think-time and protocol timer in the system, so its event dispatch rate is
the hard ceiling on experiment throughput. This module measures that rate in
isolation with three synthetic workloads plus one end-to-end experiment:

* ``schedule-run``: pre-schedule a large batch of timed events, then drain.
* ``chain``: a ``call_soon`` self-rescheduling chain (the closed-loop client
  pattern: each completion immediately schedules the next issue).
* ``timers-cancel``: arm a timeout per event and cancel 90% of them before
  they fire (the retransmission-timer pattern; stresses lazy cancellation).
* ``aggregate-arrivals``: the aggregated-client hot loop in isolation —
  batched merged-Poisson arrival draws plus per-session operation synthesis
  (:mod:`repro.workloads.aggregate`), no protocol or engine. This is the
  per-op cost floor of the million-session client model.
* ``experiment``: a small Hermes run via :func:`repro.bench.harness.run_experiment`,
  reported as simulator events per wall-clock second.

Run with::

    PYTHONPATH=src python -m repro.bench.microbench [--events N] [--repeat K]

The reported number for each workload is the best (max) events/sec across
repeats, which is the conventional way to suppress scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Simulator


def _bench_schedule_run(num_events: int) -> Tuple[int, float]:
    sim = Simulator()
    # Interleave two delay patterns so heap pushes are not already sorted.
    start = time.perf_counter()
    schedule = sim.schedule
    noop = lambda: None  # noqa: E731 - tight-loop callback
    for i in range(num_events):
        schedule((i % 97) * 1e-6 + 1e-9, noop)
    sim.run()
    elapsed = time.perf_counter() - start
    return num_events, elapsed


def _bench_chain(num_events: int) -> Tuple[int, float]:
    sim = Simulator()
    remaining = [num_events]

    def step() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_soon(step)

    sim.call_soon(step)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return num_events, elapsed


def _bench_timers_cancel(num_events: int) -> Tuple[int, float]:
    sim = Simulator()
    start = time.perf_counter()
    fired = [0]

    def fire() -> None:
        fired[0] += 1

    handles = []
    for i in range(num_events):
        handles.append(sim.schedule(1e-3 + (i % 13) * 1e-6, fire))
        # Cancel 90% of outstanding timers, as retransmission timeouts whose
        # message arrived in time would be.
        if i % 10 != 0:
            handles[-1].cancel()
    sim.run()
    elapsed = time.perf_counter() - start
    # Executed + cancelled events all pass through the scheduling machinery.
    return num_events, elapsed


def _bench_aggregate_arrivals(num_events: int) -> Tuple[int, float]:
    from repro.sim.rng import SeededRNG
    from repro.workloads.aggregate import AggregateArrivals, AggregateWorkload
    from repro.workloads.generator import WorkloadMix

    mix = WorkloadMix.uniform(1000, write_ratio=0.2, seed=11)
    arrivals = AggregateArrivals(
        sessions=1_000_000,
        aggregate_rate=1.0e6,
        rng=SeededRNG(11).child("microbench"),
        request_latency=50e-6,
        jitter=0.1,
    )
    workload = AggregateWorkload(mix)
    sink = []
    append = sink.append
    start = time.perf_counter()
    produced = 0
    clock = 0.0
    while produced < num_events:
        batch = arrivals.draw(clock, min(256, num_events - produced))
        for issue_time, _request_lat, _response_lat, session in batch:
            append(workload.next_operation(session))
        clock = batch[-1][0]
        produced += len(batch)
    elapsed = time.perf_counter() - start
    return produced, elapsed


def _bench_experiment() -> Tuple[int, float]:
    from repro.bench.harness import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        protocol="hermes",
        num_replicas=5,
        write_ratio=0.2,
        num_keys=500,
        clients_per_replica=4,
        ops_per_client=150,
        seed=7,
    )
    start = time.perf_counter()
    result = run_experiment(spec)
    elapsed = time.perf_counter() - start
    return len(result.results), elapsed


BENCHES: List[Tuple[str, Callable[[int], Tuple[int, float]]]] = [
    ("schedule-run", _bench_schedule_run),
    ("chain", _bench_chain),
    ("timers-cancel", _bench_timers_cancel),
    ("aggregate-arrivals", _bench_aggregate_arrivals),
]


def check_floor(
    rates: Dict[str, float], floor_path: str, warn_pct: float
) -> Tuple[List[str], List[str]]:
    """Compare measured rates against a recorded floor file (soft gate).

    The floor file maps workload names to reference events(or ops)/sec.
    Returns ``(warnings, deltas)``: one warning per workload measuring more
    than ``warn_pct`` percent below its floor, plus one delta line per
    workload with a floor entry — signed percent vs the reference, in both
    directions, so above-floor improvements are reported rather than
    silently passing. Never raises on drift — this is an advisory gate (CI
    machines vary widely); missing floor entries are ignored.
    """
    with open(floor_path, "r", encoding="utf-8") as handle:
        floor = json.load(handle)
    warnings: List[str] = []
    deltas: List[str] = []
    for name, rate in rates.items():
        reference = floor.get(name)
        if not isinstance(reference, (int, float)) or reference <= 0:
            continue
        delta_pct = 100.0 * (rate / reference - 1.0)
        deltas.append(f"{name} {delta_pct:+.0f}%")
        threshold = reference * (1.0 - warn_pct / 100.0)
        if rate < threshold:
            warnings.append(
                f"{name}: {rate:,.0f}/sec is {100 * (1 - rate / reference):.0f}% below "
                f"the recorded floor {reference:,.0f}/sec (warn threshold {warn_pct:.0f}%)"
            )
    return warnings, deltas


def _emit_report(warnings: List[str], deltas: List[str], floor_path: str) -> None:
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    delta_line = (
        "delta vs floor: " + ", ".join(deltas) if deltas else "delta vs floor: (no entries)"
    )
    lines = [f"### Microbench soft perf gate ({floor_path})", f"- {delta_line}"]
    if warnings:
        lines += [f"- :warning: {w}" for w in warnings]
    else:
        lines.append("- all workloads within tolerance of the recorded floor")
    for line in lines[1:]:
        print(line.replace(":warning: ", "WARNING ").lstrip("- "))
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")


def main(argv: List[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000, help="events per workload")
    parser.add_argument("--repeat", type=int, default=3, help="repeats (best is reported)")
    parser.add_argument(
        "--skip-experiment", action="store_true", help="skip the end-to-end experiment bench"
    )
    parser.add_argument(
        "--floor-file",
        help="JSON file of recorded reference rates; measured rates more than "
        "--warn-pct below a reference produce warnings (never a failure)",
    )
    parser.add_argument(
        "--warn-pct",
        type=float,
        default=30.0,
        help="soft-gate threshold in percent below the recorded floor (default 30)",
    )
    args = parser.parse_args(argv)

    rates: Dict[str, float] = {}
    print(f"{'workload':<16} {'events':>10} {'best s':>9} {'events/sec':>14}")
    for name, bench in BENCHES:
        best = float("inf")
        count = 0
        for _ in range(args.repeat):
            count, elapsed = bench(args.events)
            best = min(best, elapsed)
        rates[name] = count / best
        print(f"{name:<16} {count:>10,} {best:>9.4f} {count / best:>14,.0f}")

    if not args.skip_experiment:
        best = float("inf")
        ops = 0
        for _ in range(args.repeat):
            ops, elapsed = _bench_experiment()
            best = min(best, elapsed)
        rates["experiment"] = ops / best
        print(f"{'experiment':<16} {ops:>10,} {best:>9.4f} {ops / best:>14,.0f}  (ops/sec)")

    if args.floor_file:
        warnings, deltas = check_floor(rates, args.floor_file, args.warn_pct)
        _emit_report(warnings, deltas, args.floor_file)


if __name__ == "__main__":
    main()
