#!/usr/bin/env python3
"""A replicated lock service built on Hermes RMWs.

The paper motivates Hermes with lock services such as Chubby and ZooKeeper
(§2.1). This example implements a minimal lock service on top of the Hermes
public API: locks are keys, acquisition is a compare-and-swap RMW from
``"free"`` to the owner's name, and release is a compare-and-swap back.
Hermes guarantees that concurrent acquisitions of the same lock conflict and
at most one commits (§3.6), so mutual exclusion holds even though every
replica can coordinate updates.

Run with::

    python examples/lock_service.py
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import Cluster, ClusterConfig, Operation, OpStatus

FREE = "free"


@dataclass
class LockClient:
    """A client of the lock service, bound to one replica."""

    name: str
    cluster: Cluster
    replica_id: int
    held: List[str] = field(default_factory=list)
    failed_attempts: int = 0

    def try_acquire(self, lock: str) -> None:
        """Attempt to acquire ``lock`` with a compare-and-swap."""
        op = Operation.rmw(lock, self.name, compare=FREE)
        self.cluster.replica(self.replica_id).submit(op, self._on_acquire)

    def release(self, lock: str) -> None:
        """Release a lock this client holds."""
        op = Operation.rmw(lock, FREE, compare=self.name)
        self.cluster.replica(self.replica_id).submit(op, lambda o, s, v: None)

    def _on_acquire(self, op: Operation, status: OpStatus, value) -> None:
        if status is OpStatus.OK and value == self.name:
            self.held.append(op.key)
        else:
            # Either the CAS observed a holder, or the RMW aborted against a
            # concurrent update; both mean "not acquired".
            self.failed_attempts += 1


def main() -> None:
    cluster = Cluster(ClusterConfig(protocol="hermes", num_replicas=5, seed=7))
    locks = [f"lock:{i}" for i in range(3)]
    cluster.preload({lock: FREE for lock in locks})

    clients = [LockClient(f"client-{i}", cluster, replica_id=i) for i in range(5)]

    print("== five clients race for three locks ==")
    for client in clients:
        for lock in locks:
            cluster.sim.schedule(0.0, client.try_acquire, lock)
    cluster.run(until=0.005)

    holders: Dict[str, List[str]] = {lock: [] for lock in locks}
    for client in clients:
        for lock in client.held:
            holders[lock].append(client.name)
    for lock, owners in holders.items():
        print(f"  {lock}: held by {owners or ['nobody']}")
        assert len(owners) <= 1, "mutual exclusion violated!"

    print("\n== holders release, a waiting client retries ==")
    for client in clients:
        for lock in list(client.held):
            client.release(lock)
            client.held.remove(lock)
    cluster.run(until=0.010)

    retrying = clients[4]
    for lock in locks:
        retrying.try_acquire(lock)
    cluster.run(until=0.015)
    print(f"  {retrying.name} now holds: {retrying.held}")
    assert set(retrying.held) == set(locks)

    total_failures = sum(c.failed_attempts for c in clients)
    print(f"\n  failed acquisition attempts across clients: {total_failures}")
    print(f"  RMWs aborted by the protocol: {cluster.total_stat('rmws_aborted')}")


if __name__ == "__main__":
    main()
