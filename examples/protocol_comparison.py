#!/usr/bin/env python3
"""Compare Hermes against CRAQ and ZAB on a YCSB-B style workload.

A miniature version of the paper's headline experiment (Figure 5a / 6a at a
single point): the same read-mostly workload, the same simulated cluster and
client population, three different replication protocols. Prints throughput
and latency percentiles side by side.

Run with::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro import ExperimentSpec, run_experiment
from repro.analysis.report import format_table


def main() -> None:
    rows = []
    for protocol in ("hermes", "craq", "zab"):
        spec = ExperimentSpec(
            protocol=protocol,
            num_replicas=5,
            write_ratio=0.05,          # YCSB-B: 95% reads / 5% updates
            num_keys=2_000,
            clients_per_replica=10,
            ops_per_client=150,
            seed=1,
        )
        result = run_experiment(spec)
        rows.append(
            [
                protocol,
                f"{result.throughput:,.0f}",
                f"{result.read_latency.median_us:.1f}",
                f"{result.write_latency.median_us:.1f}",
                f"{result.overall_latency.p99_us:.1f}",
            ]
        )
    print(
        format_table(
            ["protocol", "throughput (ops/s)", "read p50 (us)", "write p50 (us)", "p99 (us)"],
            rows,
            title="YCSB-B (95% reads), 5 replicas, 50 closed-loop clients",
        )
    )
    print(
        "\nExpected shape (paper Fig. 5a/6a): Hermes highest throughput and lowest"
        "\nwrite/tail latency; CRAQ close on reads but slower writes; ZAB last."
    )


if __name__ == "__main__":
    main()
