#!/usr/bin/env python3
"""Compare Hermes against CRAQ and ZAB on a YCSB-B style workload.

A miniature version of the paper's headline experiment (Figure 5a / 6a at a
single point): the same read-mostly workload, the same simulated cluster and
client population, three different replication protocols. The three runs are
independent, so they fan out across worker processes via
:mod:`repro.bench.runner`. Prints throughput and latency percentiles side by
side.

Run with::

    python examples/protocol_comparison.py [--jobs N]

``--jobs 1`` forces a serial run; the numbers are identical either way.
"""

from __future__ import annotations

import argparse

from repro import ExperimentSpec
from repro.analysis.report import format_table
from repro.bench.runner import run_cells

PROTOCOLS = ("hermes", "craq", "zab")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: all cores)"
    )
    args = parser.parse_args()

    cells = [
        (
            protocol,
            ExperimentSpec(
                protocol=protocol,
                num_replicas=5,
                write_ratio=0.05,          # YCSB-B: 95% reads / 5% updates
                num_keys=2_000,
                clients_per_replica=10,
                ops_per_client=150,
            ),
        )
        for protocol in PROTOCOLS
    ]
    runs = run_cells(cells, root_seed=1, jobs=args.jobs)

    rows = []
    for protocol in PROTOCOLS:
        result = runs[protocol]
        rows.append(
            [
                protocol,
                f"{result.throughput:,.0f}",
                f"{result.read_latency.median_us:.1f}",
                f"{result.write_latency.median_us:.1f}",
                f"{result.overall_latency.p99_us:.1f}",
            ]
        )
    print(
        format_table(
            ["protocol", "throughput (ops/s)", "read p50 (us)", "write p50 (us)", "p99 (us)"],
            rows,
            title="YCSB-B (95% reads), 5 replicas, 50 closed-loop clients",
        )
    )
    print(
        "\nExpected shape (paper Fig. 5a/6a): Hermes highest throughput and lowest"
        "\nwrite/tail latency; CRAQ close on reads but slower writes; ZAB last."
    )


if __name__ == "__main__":
    main()
