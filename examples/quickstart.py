#!/usr/bin/env python3
"""Quickstart: a five-node Hermes deployment serving reads and writes.

Builds the paper's default deployment (five replicas), writes a handful of
keys from different coordinators, reads them back from other replicas, and
prints the per-key protocol state — demonstrating local reads, decentralized
writes and the invalidation-based commit flow.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Cluster, ClusterConfig, Operation, OpStatus


def main() -> None:
    cluster = Cluster(ClusterConfig(protocol="hermes", num_replicas=5, seed=42))
    cluster.preload({f"user:{i}": f"initial-{i}" for i in range(5)})

    completions = []

    def on_complete(op, status, value):
        completions.append((op, status, value))

    # Writes can be coordinated by any replica (decentralized writes).
    print("== issuing writes from different coordinators ==")
    for i in range(5):
        coordinator = cluster.replica(i)
        coordinator.submit(Operation.write(f"user:{i}", f"value-from-node-{i}"), on_complete)
    cluster.run(until=0.001)

    for op, status, value in completions:
        assert status is OpStatus.OK
        print(f"  write {op.key!r} = {op.value!r} committed")

    # Reads are served locally by every replica.
    print("\n== reading each key from a different replica ==")
    completions.clear()
    for i in range(5):
        reader = cluster.replica((i + 2) % 5)
        reader.submit(Operation.read(f"user:{i}"), on_complete)
    cluster.run(until=0.002)
    for op, status, value in completions:
        print(f"  read  {op.key!r} -> {value!r} (status={status.value})")

    # A compare-and-swap RMW, e.g. acquiring a lease on a key.
    print("\n== compare-and-swap ==")
    completions.clear()
    cluster.replica(3).submit(
        Operation.rmw("user:0", "locked-by-3", compare="value-from-node-0"), on_complete
    )
    cluster.run(until=0.003)
    op, status, value = completions[0]
    print(f"  rmw   {op.key!r} -> {value!r} (status={status.value})")

    print("\n== cluster statistics ==")
    print(f"  writes committed : {cluster.total_stat('writes_committed')}")
    print(f"  rmws committed   : {cluster.total_stat('rmws_committed')}")
    print(f"  local reads      : {cluster.total_stat('reads_served_locally')}")
    print(f"  network messages : {cluster.network.stats.messages_sent}")


if __name__ == "__main__":
    main()
