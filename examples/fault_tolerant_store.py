#!/usr/bin/env python3
"""Fault tolerance: a replica crash, reliable membership and write replays.

Reproduces the scenario of the paper's Figure 9 at example scale: a five-node
Hermes deployment with the reliable-membership (RM) service enabled serves a
read/write workload; one replica is crashed mid-run. Writes block while the
failed node is still part of the membership, the RM service detects the
failure, waits for lease expiry, reconfigures via its majority-based
protocol, and the deployment resumes with four replicas — all without losing
a single acknowledged write (the recorded history stays linearizable).

Run with::

    python examples/fault_tolerant_store.py
"""

from __future__ import annotations

from repro import (
    ClosedLoopClient,
    Cluster,
    ClusterConfig,
    FailureEvent,
    FailureInjector,
    History,
    UniformKeys,
    WorkloadMix,
    check_history,
)
from repro.analysis.stats import throughput_timeseries
from repro.membership.detector import FailureDetectorConfig
from repro.membership.service import MembershipConfig


def main() -> None:
    membership = MembershipConfig(
        lease_duration=0.020,
        renewal_interval=0.005,
        detection=FailureDetectorConfig(ping_interval=0.005, detection_timeout=0.050),
    )
    cluster = Cluster(
        ClusterConfig(
            protocol="hermes",
            num_replicas=5,
            seed=11,
            run_membership_service=True,
            membership=membership,
        )
    )
    workload = WorkloadMix(distribution=UniformKeys(200), write_ratio=0.1, seed=11)
    cluster.preload(workload.initial_dataset())

    crash_time, total_time = 0.030, 0.250
    crashed_node = 4
    FailureInjector(cluster, [FailureEvent.crash(crash_time, crashed_node)]).arm()

    history = History()
    clients = [
        ClosedLoopClient(
            client_id=i,
            cluster=cluster,
            workload=workload,
            max_ops=10**9,
            think_time=200e-6,
            replica_id=i % 4,  # sessions on the surviving replicas
            history=history,
        )
        for i in range(8)
    ]
    for client in clients:
        client.start()
    cluster.run(until=total_time)

    results = [r for c in clients for r in c.results]
    series = throughput_timeseries(results, window=0.010, end_time=total_time)

    print(f"node {crashed_node} crashes at {crash_time * 1e3:.0f} ms; "
          f"detection timeout {membership.detection.detection_timeout * 1e3:.0f} ms\n")
    print("time (ms)   throughput (ops/s)")
    for time_s, ops in series:
        bar = "#" * int(ops / 2500)
        print(f"{time_s * 1e3:8.0f}   {ops:12,.0f}  {bar}")

    service = cluster.membership_service
    print(f"\nmembership reconfigurations: {service.reconfigurations}")
    print(f"surviving members: {sorted(service.view.members)} (epoch {service.view.epoch_id})")
    print(f"completed operations: {len(results)}")

    linearizable = check_history(history, initial_values=workload.initial_dataset())
    print(f"recorded history linearizable: {linearizable}")
    assert linearizable


if __name__ == "__main__":
    main()
