"""Setuptools entry point.

Package metadata lives in ``pyproject.toml``; this stub exists so that the
package can be installed in editable mode on environments whose tooling
predates PEP 660 editable wheels (and in offline environments where build
isolation cannot fetch a build backend).
"""

from setuptools import setup

setup()
