#!/usr/bin/env python3
"""Markdown link checker for the repository's docs (CI `docs` job).

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and reference definitions (``[ref]: target``) and
verifies that **local** targets exist:

* relative file paths must point at an existing file or directory
  (resolved against the linking file's directory);
* intra-repo anchors (``FILE.md#section``) must match a heading in the
  target file (GitHub slug rules: lowercase, punctuation stripped, spaces
  to dashes);
* external targets (``http://``, ``https://``, ``mailto:``) are skipped —
  CI must not depend on third-party availability.

Exits non-zero listing every broken link. No dependencies beyond the
standard library, matching the repository's no-install policy.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

#: Inline links/images: [text](target) — target up to the first unescaped ')'.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference-style definitions: [ref]: target
_REF_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _heading_slugs(markdown: str) -> set[str]:
    """GitHub-style anchor slugs of every heading in a markdown document."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for line in markdown.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if not match:
            continue
        heading = re.sub(r"[`*_]", "", match.group(1)).strip()
        slug = re.sub(r"[^\w\- ]", "", heading.lower()).replace(" ", "-")
        count = counts.get(slug, 0)
        counts[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def _targets(markdown: str) -> list[str]:
    found = _INLINE_LINK.findall(markdown)
    # Strip fenced code blocks before collecting reference definitions —
    # example tables/configs often contain [key]: value lines.
    without_code = re.sub(r"```.*?```", "", markdown, flags=re.DOTALL)
    found.extend(_REF_DEF.findall(without_code))
    return found


def check_file(path: Path, repo_root: Path) -> list[str]:
    """Return error strings for every broken local link in one file."""
    errors: list[str] = []
    markdown = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    scannable = re.sub(r"```.*?```", "", markdown, flags=re.DOTALL)
    for target in _targets(scannable):
        if target.startswith(_EXTERNAL) or target.startswith("<"):
            continue
        file_part, _, anchor = target.partition("#")
        if not file_part:
            if anchor and anchor not in _heading_slugs(markdown):
                errors.append(f"{path}: broken anchor #{anchor}")
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target!r} -> {resolved}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in _heading_slugs(resolved.read_text(encoding="utf-8")):
                errors.append(f"{path}: broken anchor {target!r}")
    return errors


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    tracked = subprocess.run(
        ["git", "ls-files", "*.md"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.split()
    errors: list[str] = []
    for name in tracked:
        errors.extend(check_file(repo_root / name, repo_root))
    for error in errors:
        print(f"ERROR {error}")
    print(f"checked {len(tracked)} markdown files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
