#!/usr/bin/env python3
"""Measure the aggregated client model's wall-clock headline number.

The metric is **simulated users served per wall-clock second**: how many
synthetic sessions a run represents, divided by how long the host takes to
simulate it. The per-session model allocates one client object (and one
arrival event chain) per session, so its wall cost grows linearly with the
population; the aggregated model's cost is bounded by the *op budget*, so
its users/sec grows with the population instead.

Two measurements, both at smoke scale:

* **aggregated**: the ``usersweep`` figure's largest cell — 10^6 sessions
  across 64 parallel shards, one open-loop aggregated generator per node.
* **per-session**: the classic one-object-per-session open-loop model at
  10^4 sessions (2000 clients on each of 5 nodes — already far beyond its
  comfortable range; 10^6 per-session objects would take hours, which is
  the point of the aggregated model).

Prints both rates and their ratio. The PR's acceptance bar is a >= 50x
ratio. Wall-clock numbers are machine-dependent, which is why this lives
in a script instead of the byte-deterministic figure artifact.

Usage::

    PYTHONPATH=src python scripts/usersweep_speedup.py [--jobs N]

No dependencies beyond the standard library (repo no-install policy).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.experiments import USER_SWEEP_OFFERED_LOAD  # noqa: E402
from repro.bench.harness import ExperimentSpec, Scale  # noqa: E402
from repro.bench.runner import run_specs  # noqa: E402

AGGREGATED_SESSIONS = 1_000_000
AGGREGATED_SHARDS = 64
PER_SESSION_SESSIONS = 10_000


def _base_spec(scale: Scale) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="hermes",
        write_ratio=0.05,
        zipfian_exponent=0.99,
        label="usersweep-speedup",
        seed=1,
    ).with_scale(scale)


def measure(spec: ExperimentSpec, sessions: int, jobs: int) -> float:
    """Run ``spec`` once and return simulated users per wall-clock second."""
    start = time.perf_counter()
    run_specs([spec], jobs=jobs)
    elapsed = time.perf_counter() - start
    return sessions / elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel-shard aggregated run "
        "(default: all cores)",
    )
    args = parser.parse_args(argv)
    scale = Scale.smoke()

    aggregated = replace(
        _base_spec(scale),
        client_model="aggregated",
        sessions=AGGREGATED_SESSIONS,
        offered_load=USER_SWEEP_OFFERED_LOAD,
        shards=AGGREGATED_SHARDS,
        shard_mode="parallel",
    )
    agg_rate = measure(aggregated, AGGREGATED_SESSIONS, jobs=args.jobs)

    # Per-session open loop: one client object per session, spread over the
    # default 5 nodes; the op budget per session shrinks so the total
    # simulated work stays comparable to one aggregated cell.
    per_node = PER_SESSION_SESSIONS // 5
    per_session = replace(
        _base_spec(scale),
        client_model="open",
        clients_per_replica=per_node,
        ops_per_client=max(1, (scale.clients_per_replica * scale.ops_per_client) // per_node),
        offered_load=USER_SWEEP_OFFERED_LOAD,
    )
    base_rate = measure(per_session, PER_SESSION_SESSIONS, jobs=1)

    ratio = agg_rate / base_rate
    print(f"{'model':<14} {'sessions':>10} {'users/wall-sec':>16}")
    print(f"{'aggregated':<14} {AGGREGATED_SESSIONS:>10,} {agg_rate:>16,.0f}")
    print(f"{'per-session':<14} {PER_SESSION_SESSIONS:>10,} {base_rate:>16,.0f}")
    print(f"speedup: {ratio:,.1f}x (acceptance bar: >= 50x)")
    return 0 if ratio >= 50.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
