#!/usr/bin/env python3
"""Standalone entry point for the determinism & aliasing linter (CI `lint` job).

Runs :mod:`repro.analysis.lint` over the repository's Python trees without
requiring the package to be installed: the ``src/`` layout directory is put
on ``sys.path`` directly, matching how the test suite and the other scripts
run. With no arguments it lints the default trees against the committed
baseline and writes the JSON report CI uploads::

    python scripts/run_lint.py
    # equivalent to:
    #   PYTHONPATH=src python -m repro.analysis.lint src/ scripts/ benchmarks/ \
    #       --baseline lint-baseline.json --json lint-report.json

Arguments are passed straight through to the linter CLI, so targeted runs
work too: ``python scripts/run_lint.py src/repro/sim/ --json -``.

No dependencies beyond the standard library (repo no-install policy).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint import main as lint_main  # noqa: E402

#: Trees linted by default (benchmarks/ may not exist in sparse checkouts).
#: src/repro/fuzz is listed explicitly so targeted sparse checkouts that
#: drop src/ top-level siblings still lint the fuzz harness; when src/ is
#: present the nested entry is deduplicated below.
DEFAULT_PATHS = ("src", "src/repro/fuzz", "scripts", "benchmarks")


def _dedup_nested(paths: list[Path]) -> list[Path]:
    kept: list[Path] = []
    for path in paths:
        if not any(other != path and other in path.parents for other in paths):
            kept.append(path)
    return kept


def main(argv: list[str]) -> int:
    if argv and not argv[0].startswith("-"):
        # Explicit paths given: pure pass-through.
        return lint_main(argv)
    candidates = [REPO_ROOT / p for p in DEFAULT_PATHS if (REPO_ROOT / p).is_dir()]
    paths = [str(p) for p in _dedup_nested(candidates)]
    args = paths + [
        "--baseline",
        str(REPO_ROOT / "lint-baseline.json"),
        "--json",
        str(REPO_ROOT / "lint-report.json"),
    ]
    return lint_main(args + argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
